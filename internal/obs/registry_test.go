package obs

// registry_test.go covers the registry and its Prometheus exposition:
// family grouping and ordering, label rendering and escaping, histogram
// bucket cumulativity, func-backed series, duplicate/kind-clash panics,
// and the HTTP handler's content type.

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests received.")
	c.Add(42)
	r.Counter("test_solves_total", "Solves by endpoint.", L("endpoint", "reduce")).Add(3)
	r.Counter("test_solves_total", "Solves by endpoint.", L("endpoint", "maxis")).Inc()
	g := r.Gauge("test_inflight", "In-flight solves.")
	g.Set(2.5)
	r.GaugeFunc("test_queue_depth", "Queue depth.", func() float64 { return 7 })
	r.CounterFunc("test_cache_hits_total", "Cache hits.", func() float64 { return 11 })
	h := r.Histogram("test_latency_seconds", "Latency.", L("track", "reduce"))
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests received.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 42\n",
		`test_solves_total{endpoint="reduce"} 3` + "\n",
		`test_solves_total{endpoint="maxis"} 1` + "\n",
		"# TYPE test_inflight gauge\n",
		"test_inflight 2.5\n",
		"test_queue_depth 7\n",
		"test_cache_hits_total 11\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{track="reduce",le="+Inf"} 2` + "\n",
		`test_latency_seconds_count{track="reduce"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with several series.
	if got := strings.Count(out, "# TYPE test_solves_total counter"); got != 1 {
		t.Fatalf("TYPE rendered %d times, want 1", got)
	}
}

func TestRegistryHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cum_seconds", "x")
	h.Observe(0)
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var last uint64
	var bucketLines int
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "cum_seconds_bucket{") {
			continue
		}
		bucketLines++
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
		last = v
	}
	if bucketLines < 2 {
		t.Fatalf("expected several bucket lines, got %d", bucketLines)
	}
	if last != 4 {
		t.Fatalf("+Inf bucket = %d, want 4", last)
	}
	if !strings.Contains(sb.String(), "cum_seconds_count 4\n") {
		t.Fatalf("missing _count:\n%s", sb.String())
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "x", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaping wrong, want %q in:\n%s", want, sb.String())
	}
}

func TestRegistryMisusePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("bad metric name", func() { NewRegistry().Counter("1bad", "x") })
	expectPanic("bad label name", func() { NewRegistry().Counter("ok_total", "x", L("1bad", "v")) })
	expectPanic("reserved le", func() { NewRegistry().Histogram("ok_seconds", "x", L("le", "1")) })
	expectPanic("duplicate series", func() {
		r := NewRegistry()
		r.Counter("dup_total", "x")
		r.Counter("dup_total", "x")
	})
	expectPanic("kind clash", func() {
		r := NewRegistry()
		r.Counter("clash", "x", L("a", "1"))
		r.Gauge("clash", "x", L("a", "2"))
	})
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1\n") {
		t.Fatalf("handler body:\n%s", rec.Body.String())
	}
}

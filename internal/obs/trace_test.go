package obs

// trace_test.go covers the span tracer: nesting, attribute carriage,
// the children-duration-bounded-by-root invariant, unended-span
// clamping, capacity drops, nil-safety, the ring buffer, request-id
// validation, and the context plumbing.

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceNesting(t *testing.T) {
	tr := NewTrace("reduce", "req-12345678")
	gate := tr.Start("gate_wait")
	gate.End()
	phase := tr.Start("phase")
	phase.SetPhase(1)
	phase.SetDims(10, 45)
	phase.SetOracle("greedy-mindeg")
	phase.SetIS(4, 9)
	build := phase.Child("csr_build")
	time.Sleep(time.Millisecond)
	build.End()
	phase.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.Op != "reduce" || snap.RequestID != "req-12345678" {
		t.Fatalf("root mislabeled: %+v", snap)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("top-level spans = %d, want 2", len(snap.Spans))
	}
	ph := snap.Spans[1]
	if ph.Phase != 1 || ph.N != 10 || ph.M != 45 || ph.Oracle != "greedy-mindeg" || ph.ISSize != 4 || ph.ISWeight != 9 {
		t.Fatalf("phase attrs lost: %+v", ph)
	}
	if len(ph.Children) != 1 || ph.Children[0].Name != "csr_build" {
		t.Fatalf("nesting lost: %+v", ph.Children)
	}
	if ph.Children[0].DurUS > ph.DurUS {
		t.Fatalf("child longer than parent: %d > %d", ph.Children[0].DurUS, ph.DurUS)
	}
	// The acceptance invariant: top-level span durations sum to at most
	// the root duration (they are sequential inside one request).
	var sum int64
	for _, sp := range snap.Spans {
		sum += sp.DurUS
	}
	if sum > snap.DurUS {
		t.Fatalf("children sum %dµs exceeds root %dµs", sum, snap.DurUS)
	}
	// The snapshot must be JSON-encodable (it rides in responses).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}

func TestTraceUnendedSpanClamps(t *testing.T) {
	tr := NewTrace("reduce", "")
	tr.Start("parse") // never ended: an error unwound past it
	tr.Finish()
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("spans = %d", len(snap.Spans))
	}
	if snap.Spans[0].DurUS > snap.DurUS {
		t.Fatalf("unended span not clamped: %d > %d", snap.Spans[0].DurUS, snap.DurUS)
	}
}

func TestTraceCapacityDrops(t *testing.T) {
	tr := NewTrace("op", "", 2)
	a := tr.Start("a")
	b := tr.Start("b")
	c := tr.Start("dropped")
	a.End()
	b.End()
	c.End() // no-op handle, must not panic
	c.SetPhase(9)
	tr.Finish()
	snap := tr.Snapshot()
	if len(snap.Spans) != 2 || snap.Dropped != 1 {
		t.Fatalf("capacity accounting wrong: %d spans, %d dropped", len(snap.Spans), snap.Dropped)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.SetPhase(1)
	sp.Child("y").End()
	sp.End()
	tr.Finish()
	tr.Reset("op", "")
	if tr.Snapshot() != nil || tr.RequestID() != "" {
		t.Fatal("nil trace must snapshot to nil")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(empty ctx) = %v", got)
	}
	if got := TraceFrom(nil); got != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("TraceFrom(nil) = %v", got)
	}
}

func TestTraceReset(t *testing.T) {
	tr := NewTrace("a", "id-aaaaaaaa", 8)
	tr.Start("x").End()
	tr.Finish()
	tr.Reset("b", "id-bbbbbbbb")
	tr.Start("y").End()
	tr.Finish()
	snap := tr.Snapshot()
	if snap.Op != "b" || snap.RequestID != "id-bbbbbbbb" || len(snap.Spans) != 1 || snap.Spans[0].Name != "y" {
		t.Fatalf("reset incomplete: %+v", snap)
	}
}

func TestContextTracePlumbing(t *testing.T) {
	tr := NewTrace("op", "")
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace lost in context")
	}
}

func TestRingNewestFirstAndOverwrite(t *testing.T) {
	r := NewRing(2)
	for _, op := range []string{"a", "b", "c"} {
		tr := NewTrace(op, "")
		tr.Finish()
		r.Push(tr.Snapshot())
	}
	got := r.Snapshot(0)
	if len(got) != 2 || got[0].Op != "c" || got[1].Op != "b" {
		t.Fatalf("ring contents wrong: %+v", got)
	}
	if limited := r.Snapshot(1); len(limited) != 1 || limited[0].Op != "c" {
		t.Fatalf("limit ignored: %+v", limited)
	}
	if r.Total() != 3 {
		t.Fatalf("total = %d", r.Total())
	}
	var nilRing *Ring
	nilRing.Push(nil)
	if nilRing.Snapshot(5) != nil || nilRing.Total() != 0 {
		t.Fatal("nil ring must no-op")
	}
}

func TestRequestIDs(t *testing.T) {
	id := NewRequestID()
	if !ValidRequestID(id) {
		t.Fatalf("minted id %q invalid", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("two minted ids collided: %q", id)
	}
	for _, ok := range []string{"abcd1234", "A-b_c.d12345", "12345678"} {
		if !ValidRequestID(ok) {
			t.Fatalf("%q should be valid", ok)
		}
	}
	for _, bad := range []string{"", "short", "has space8", "evil\r\nheader", "x" + string(make([]byte, 64))} {
		if ValidRequestID(bad) {
			t.Fatalf("%q should be invalid", bad)
		}
	}
	if got := EnsureRequestID("caller-supplied-1"); got != "caller-supplied-1" {
		t.Fatalf("valid id replaced: %q", got)
	}
	if got := EnsureRequestID("no"); !ValidRequestID(got) || got == "no" {
		t.Fatalf("invalid id not replaced: %q", got)
	}
	ctx := ContextWithRequestID(context.Background(), "rid-12345678")
	if RequestIDFrom(ctx) != "rid-12345678" {
		t.Fatal("request id lost in context")
	}
	if RequestIDFrom(context.Background()) != "" || RequestIDFrom(nil) != "" { //nolint:staticcheck
		t.Fatal("missing request id must read as empty")
	}
}

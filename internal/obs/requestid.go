package obs

// requestid.go is the request-id propagation contract: cfgate mints an
// id per request (accepting a caller-supplied one when it is shaped like
// an id), forwards it to the backend next to the instance-key header,
// cfserve echoes it and stamps it on traces and job metadata. The trust
// boundary sits at the gateway: anything not matching ValidRequestID is
// replaced, so backends and logs only ever see bounded, log-safe ids.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader carries the request id across the cluster, next to
// X-Pslocal-Instance-Key and X-Pslocal-Backend.
const RequestIDHeader = "X-Pslocal-Request-Id"

// requestIDBytes is the entropy of a minted id (rendered as 2x hex
// digits).
const requestIDBytes = 8

// NewRequestID mints a fresh random request id (16 hex digits).
func NewRequestID() string {
	var b [requestIDBytes]byte
	// crypto/rand.Read is documented to never fail; a broken entropy
	// source crashes the process there, not here.
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether s is acceptable as a caller-supplied
// request id: 8 to 64 characters of [0-9A-Za-z._-]. Anything else —
// empty, oversized, control characters, header-splitting attempts — is
// replaced at the trust boundary.
func ValidRequestID(s string) bool {
	if len(s) < 8 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// EnsureRequestID returns s when it is a valid request id and mints a
// fresh one otherwise.
func EnsureRequestID(s string) string {
	if ValidRequestID(s) {
		return s
	}
	return NewRequestID()
}

// ridCtxKey keys the request id in a context.
type ridCtxKey struct{}

// ContextWithRequestID attaches a request id to ctx.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridCtxKey{}, id)
}

// RequestIDFrom returns the request id attached to ctx ("" when none).
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ridCtxKey{}).(string)
	return id
}

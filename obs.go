package pslocal

// obs.go re-exports the observability substrate (internal/obs): a
// dependency-free metrics registry with a Prometheus text-format
// exposition (what cfserve and cfgate serve as GET /metrics), a
// per-solve span tracer threaded through Solver and the reduction core
// via the context, and the request-id propagation contract the cluster
// uses to correlate one request across gateway, backend and job store.
//
//	reg := pslocal.NewMetricsRegistry()
//	solves := reg.Counter("pslocal_solves_total", "Solves.",
//		pslocal.MetricsLabel{Key: "endpoint", Value: "reduce"})
//	http.Handle("GET /metrics", reg.Handler())
//
//	tr := pslocal.NewTrace("reduce", requestID)
//	ctx = pslocal.ContextWithTrace(ctx, tr)
//	res, inst, err := sv.SolveReader(ctx, body, format) // phases recorded
//	tr.Finish()
//	snapshot := tr.Snapshot() // nested spans, JSON-ready
//
// All trace operations are nil-safe no-ops, so instrumented code paths
// cost one context lookup when tracing is off; span recording on a live
// trace allocates nothing (the cache-hit alloc gate covers it).

import "pslocal/internal/obs"

type (
	// MetricsRegistry collects metric families and renders them in the
	// Prometheus text exposition format; construct with
	// NewMetricsRegistry. Safe for concurrent use.
	MetricsRegistry = obs.Registry
	// MetricsCounter is a monotonically increasing counter handle.
	MetricsCounter = obs.Counter
	// MetricsGauge is a set-to-current-value gauge handle.
	MetricsGauge = obs.Gauge
	// MetricsHistogram is a fixed log2 latency histogram over
	// microseconds; its Snapshot is the /statz latency-track shape.
	MetricsHistogram = obs.Histogram
	// MetricsHistSnapshot is a histogram snapshot (count, mean and
	// upper-bound quantiles in milliseconds).
	MetricsHistSnapshot = obs.HistSnapshot
	// MetricsLabel is one metric label pair.
	MetricsLabel = obs.Label

	// Trace is one request's (or job's) span collection; a nil *Trace is
	// a valid no-op receiver.
	Trace = obs.Trace
	// TraceSpan is a value handle onto one recorded span; the zero value
	// no-ops.
	TraceSpan = obs.Span
	// TraceSnapshot is the nested JSON rendering of a finished trace.
	TraceSnapshot = obs.TraceSnapshot
	// TraceSpanSnapshot is one span within a TraceSnapshot.
	TraceSpanSnapshot = obs.SpanSnapshot
	// TraceRing is a bounded in-memory buffer of finished trace
	// snapshots — what GET /v1/traces serves.
	TraceRing = obs.Ring
)

// RequestIDHeader carries the correlation id across the cluster
// (X-Pslocal-Request-Id): cfgate mints or validates it, forwards it on
// every proxy attempt, and cfserve echoes it and stamps it on traces and
// job metadata.
const RequestIDHeader = obs.RequestIDHeader

// NewMetricsRegistry constructs an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTrace starts a trace for one operation tagged with a request id
// ("" when none); close with Finish and render with Snapshot.
func NewTrace(op, requestID string, maxSpans ...int) *Trace {
	return obs.NewTrace(op, requestID, maxSpans...)
}

// NewTraceRing builds a ring retaining the last n trace snapshots
// (n < 1 selects 128).
func NewTraceRing(n int) *TraceRing { return obs.NewRing(n) }

// ContextWithTrace attaches a trace to ctx; Solver and the reduction
// core record spans onto it.
var ContextWithTrace = obs.ContextWithTrace

// TraceFromContext returns the trace attached to ctx (nil when none; the
// nil result is a valid no-op receiver).
var TraceFromContext = obs.TraceFrom

// NewRequestID mints a fresh random request id (16 hex digits).
var NewRequestID = obs.NewRequestID

// ValidRequestID reports whether a caller-supplied request id is
// acceptable: 8 to 64 characters of [0-9A-Za-z._-].
var ValidRequestID = obs.ValidRequestID

// EnsureRequestID returns its argument when it is a valid request id and
// mints a fresh one otherwise — the gateway's trust boundary.
var EnsureRequestID = obs.EnsureRequestID

// ContextWithRequestID attaches a request id to ctx.
var ContextWithRequestID = obs.ContextWithRequestID

// RequestIDFromContext returns the request id attached to ctx ("" when
// none).
var RequestIDFromContext = obs.RequestIDFrom

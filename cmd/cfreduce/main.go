// Command cfreduce runs the Theorem 1.1 reduction — conflict-free
// multicolouring via iterated approximate maximum independent set — on a
// generated or file-based hypergraph and reports per-phase statistics.
//
// Usage examples:
//
//	cfreduce -gen planted -n 60 -m 24 -k 3 -mode exact
//	cfreduce -gen interval -n 80 -m 40 -mode implicit -print-coloring
//	cfreduce -in instance.hg -k 2 -mode greedy-mindeg -seed 7 -workers 0
//	cfreduce -in instance.json -out result.json
//	cfreduce -oracle portfolio:greedy-mindeg,greedy-random,clique-removal -workers 0
//
// Besides the built-in modes `exact` and `implicit`, -mode accepts any
// oracle name of the maxis registry (see -mode help), including
// portfolio:<a>,<b>,... names that race several oracles per phase;
// -oracle is the explicit registry spelling and overrides -mode.
// -workers sets the worker pool shared by conflict-graph construction
// and portfolio solving (0 = GOMAXPROCS, 1 = serial).
//
// The command is a thin shell over a pslocal.Solver: the flags become
// solver options, the solve runs under a signal context, so Ctrl-C
// cancels a long reduction cooperatively instead of killing the process
// mid-write.
//
// -in accepts any internal/graphio format (the native edge list, DIMACS
// for graphs, or JSON), sniffed from the content; -out writes the
// reduction result as the graphio JSON document ("-" for stdout), the
// same schema cmd/cfserve responds with.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pslocal"
	"pslocal/internal/encode"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
	"pslocal/internal/verify"

	"math/rand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cfreduce:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		genName  = flag.String("gen", "planted", "instance generator: planted | uniform | interval | star")
		inFile   = flag.String("in", "", "read hypergraph from file instead of generating (edge-list/DIMACS/JSON, sniffed)")
		outFile  = flag.String("out", "", "write the reduction result as JSON to this file (\"-\" = stdout)")
		n        = flag.Int("n", 60, "vertices")
		m        = flag.Int("m", 24, "hyperedges")
		k        = flag.Int("k", 3, "palette size per phase")
		sizeLo   = flag.Int("size-lo", 3, "minimum edge size (planted/uniform)")
		sizeHi   = flag.Int("size-hi", 5, "maximum edge size (planted/interval)")
		modeName = flag.String("mode", "implicit",
			"solving mode: exact | implicit | a registry oracle name | help to list")
		oracleName = flag.String("oracle", "",
			"registry oracle name, incl. portfolio:<a>,<b>,... (overrides -mode)")
		seed     = flag.Int64("seed", 1, "random seed (instance generation and randomized oracles)")
		workers  = flag.Int("workers", 1, "construction/portfolio workers (0 = GOMAXPROCS)")
		printCol = flag.Bool("print-coloring", false, "dump the multicolouring")
		timeout  = flag.Duration("timeout", 0, "abandon the reduction after this long, e.g. 30s (0 = unbounded)")
	)
	flag.Parse()

	mode := *modeName
	if *oracleName != "" {
		mode = *oracleName
	}
	if mode == "help" {
		modes := []string{"exact", "implicit"}
		for _, name := range pslocal.OracleNames() {
			if name != "exact" { // the built-in exact mode already covers it (with the clique hint)
				modes = append(modes, name)
			}
		}
		modes = append(modes, "portfolio:<a>,<b>,...")
		fmt.Printf("modes: %s\n", strings.Join(modes, ", "))
		return nil
	}
	if name, ok := legacyModes[mode]; ok {
		mode = name
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		// An expired -timeout surfaces from the Solver as ErrCancelled
		// (matching context.DeadlineExceeded), the same cooperative path
		// Ctrl-C takes — no mid-write kill, no unbounded run.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rng := rand.New(rand.NewSource(*seed))
	h, err := makeInstance(*inFile, *genName, *n, *m, *k, *sizeLo, *sizeHi, rng)
	if err != nil {
		return err
	}
	sv := pslocal.NewSolver(
		pslocal.WithK(*k),
		pslocal.WithSeed(*seed),
		pslocal.WithWorkers(*workers),
		pslocal.WithOracle(mode),
	)
	fmt.Printf("instance: %v\n", h)
	res, err := sv.Solve(ctx, h)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-8s %-10s %-8s %-8s\n", "phase", "edges", "G_k nodes", "|I|", "removed")
	for _, ph := range res.Phases {
		fmt.Printf("%-6d %-8d %-10d %-8d %-8d\n",
			ph.Phase, ph.EdgesBefore, ph.ConflictNodes, ph.ISSize, ph.HappyRemoved)
	}
	fmt.Printf("phases: %d, total colours: %d (k=%d per phase)\n",
		len(res.Phases), res.TotalColors, res.K)

	var report verify.Report
	report.Add("multicolouring conflict-free", verify.ConflictFreeMulti(h, res.Multicoloring))
	report.Add("phase bookkeeping", verify.ReductionResult(h, res))
	fmt.Print(report.String())
	if !report.OK() {
		return report.Err()
	}
	if *printCol {
		if err := encode.WriteMulticoloring(os.Stdout, res.Multicoloring); err != nil {
			return err
		}
	}
	if *outFile != "" {
		if err := writeResult(*outFile, res); err != nil {
			return err
		}
	}
	return nil
}

// writeResult dumps the result document to path, or stdout for "-".
func writeResult(path string, res *pslocal.ReduceResult) error {
	if path == "-" {
		return graphio.WriteResult(os.Stdout, res)
	}
	return graphio.WriteResultFile(path, res)
}

func makeInstance(inFile, gen string, n, m, k, sizeLo, sizeHi int, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	if inFile != "" {
		return graphio.ReadHypergraphFile(inFile)
	}
	switch gen {
	case "planted":
		h, _, err := hypergraph.PlantedCF(n, m, k, sizeLo, sizeHi, rng)
		return h, err
	case "uniform":
		return hypergraph.Uniform(n, m, sizeLo, rng)
	case "interval":
		return hypergraph.Interval(n, m, 2, sizeHi, rng)
	case "star":
		return hypergraph.Star(n, m, sizeLo, rng)
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

// legacyModes maps the pre-registry flag spellings to registry names.
var legacyModes = map[string]string{
	"greedy":    "greedy-mindeg",
	"random":    "greedy-random",
	"cliquerem": "clique-removal",
}

package main

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pslocal"
	"pslocal/internal/core"
	"pslocal/internal/encode"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
)

func TestMakeInstanceGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, gen := range []string{"planted", "uniform", "interval", "star"} {
		h, err := makeInstance("", gen, 30, 10, 3, 3, 5, rng)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if h.N() != 30 || h.M() != 10 {
			t.Errorf("%s: n=%d m=%d, want 30, 10", gen, h.N(), h.M())
		}
	}
	if _, err := makeInstance("", "nope", 10, 5, 2, 2, 3, rng); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestMakeInstanceFromFile(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1}, {2, 3}})
	path := filepath.Join(t.TempDir(), "h.hg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := encode.WriteHypergraph(f, h); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	back, err := makeInstance(path, "ignored", 0, 0, 0, 0, 0, nil)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if back.N() != 4 || back.M() != 2 {
		t.Errorf("n=%d m=%d, want 4, 2", back.N(), back.M())
	}
	if _, err := makeInstance(filepath.Join(t.TempDir(), "missing"), "", 0, 0, 0, 0, 0, nil); err == nil {
		t.Error("missing file accepted")
	}
}

// TestModeSpellings checks that every documented -mode spelling — the
// built-ins, the legacy aliases, and a portfolio name — resolves through
// the Solver and reduces a small instance, and that an unknown spelling
// surfaces the typed error.
func TestModeSpellings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, _, err := hypergraph.PlantedCF(20, 8, 2, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{
		"exact", "implicit", "greedy", "random", "cliquerem",
		"portfolio:greedy-mindeg,greedy-random",
	} {
		name := mode
		if legacy, ok := legacyModes[mode]; ok {
			name = legacy
		}
		sv := pslocal.NewSolver(pslocal.WithK(2), pslocal.WithOracle(name))
		res, err := sv.Solve(context.Background(), h)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.K != 2 || len(res.Phases) == 0 {
			t.Errorf("%s: degenerate result %+v", mode, res)
		}
	}
	sv := pslocal.NewSolver(pslocal.WithOracle("nope"))
	if _, err := sv.Solve(context.Background(), h); !errors.Is(err, pslocal.ErrUnknownOracle) {
		t.Errorf("unknown mode error = %v, want ErrUnknownOracle", err)
	}
}

// TestTimeoutSurfacesErrCancelled pins the -timeout contract: an expired
// context.WithTimeout deadline surfaces from the Solver as the typed
// ErrCancelled (also matching context.DeadlineExceeded), so the CLI
// reports a clean cancellation instead of running unbounded.
func TestTimeoutSurfacesErrCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, _, err := hypergraph.PlantedCF(20, 8, 2, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // the deadline has certainly expired
	sv := pslocal.NewSolver(pslocal.WithK(2))
	_, err = sv.Solve(ctx, h)
	if !errors.Is(err, pslocal.ErrCancelled) {
		t.Errorf("error = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want to also match context.DeadlineExceeded", err)
	}
}

// TestMakeInstanceFromJSONFile checks that -in accepts the graphio JSON
// format (sniffed from content, whatever the extension).
func TestMakeInstanceFromJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.json")
	doc := `{"type":"hypergraph","n":4,"edges":[[0,1],[2,3]]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := makeInstance(path, "ignored", 0, 0, 0, 0, 0, nil)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if h.N() != 4 || h.M() != 2 {
		t.Errorf("n=%d m=%d, want 4, 2", h.N(), h.M())
	}
}

// TestWriteResult checks the -out path round-trips through graphio.
func TestWriteResult(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1}, {2, 3}})
	res, err := core.Reduce(nil, h, core.Options{K: 2, Mode: core.ModeImplicitFirstFit})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "res.json")
	if err := writeResult(path, res); err != nil {
		t.Fatalf("writeResult: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := graphio.ReadResult(f)
	if err != nil {
		t.Fatalf("ReadResult: %v", err)
	}
	if back.K != res.K || back.TotalColors != res.TotalColors || len(back.Phases) != len(res.Phases) {
		t.Errorf("result round trip changed the document: %+v vs %+v", back, res)
	}
}

// Command psctab regenerates the reproduction's experiment tables
// (E1–E15), figure-equivalents (F1–F3) and ablations (A1–A3) — the
// DESIGN.md Section 4 index. A non-zero exit status means a paper claim
// failed on the generated grid.
//
// Usage:
//
//	psctab                 # everything
//	psctab -only E4,F1     # a subset
//	psctab -quick -seed 7  # small grids, different seed
//	psctab -only E13 -oracle portfolio:greedy-mindeg,clique-removal -workers 0
//	psctab -quick -out tables.txt
//
// -out writes the rendered tables to a file instead of stdout, so
// experiment pipelines can archive a run next to its instances.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pslocal/internal/engine"
	"pslocal/internal/experiments"
	"pslocal/internal/maxis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psctab:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		seed    = flag.Int64("seed", 1, "random seed for all grids (the default shared by cfreduce and pscgen)")
		quick   = flag.Bool("quick", false, "use the reduced benchmark grids")
		only    = flag.String("only", "", "comma-separated subset, e.g. E1,E4,F2,A1 (empty = all)")
		workers = flag.Int("workers", 1, "construction/portfolio workers (0 = GOMAXPROCS)")
		oracle  = flag.String("oracle", "",
			"portfolio oracle raced by E13, portfolio:<a>,<b>,... (empty = E13 default)")
		outFile = flag.String("out", "", "write the rendered tables to this file instead of stdout")
		timeout = flag.Duration("timeout", 0, "abandon the run after this long, e.g. 5m (0 = unbounded)")
	)
	flag.Parse()
	var w io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if err := validateOracle(*oracle, *seed); err != nil {
		return err
	}
	// The grids run under a signal context, so Ctrl-C cancels the current
	// experiment's construction and portfolio solves cooperatively;
	// -timeout bounds the whole run through the same path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	eng := engine.FromWorkersFlag(*workers)
	eng.Ctx = ctx
	cfg := experiments.Config{
		Seed:   *seed,
		Quick:  *quick,
		Engine: eng,
		Oracle: *oracle,
	}

	gens := generators()
	want := parseOnly(*only)
	var failures []string
	printed := 0
	for _, g := range gens {
		if len(want) > 0 && !want[g.id] {
			continue
		}
		if printed > 0 {
			fmt.Fprintln(w)
		}
		tab, err := g.fn(cfg)
		if tab != nil {
			if rerr := tab.Render(w); rerr != nil {
				return rerr
			}
			printed++
		}
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", g.id, err))
		}
	}
	if printed == 0 {
		return fmt.Errorf("no experiment matched -only=%q", *only)
	}
	if len(failures) > 0 {
		return fmt.Errorf("claims failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

// gen pairs an experiment id with its generator.
type gen struct {
	id string
	fn func(experiments.Config) (*experiments.Table, error)
}

// generators returns the DESIGN.md Section 4 index in rendering order:
// E1–E15, F1–F3, A1–A3.
func generators() []gen {
	return []gen{
		{"E1", experiments.E1ConflictGraphSize},
		{"E2", experiments.E2Lemma21a},
		{"E3", experiments.E3Lemma21b},
		{"E4", experiments.E4PhaseDecay},
		{"E5", experiments.E5ColorBudget},
		{"E6", experiments.E6Containment},
		{"E7", experiments.E7OracleQuality},
		{"E8", experiments.E8ModelBaselines},
		{"E9", experiments.E9NetDecomp},
		{"E10", experiments.E10IntervalCF},
		{"E11", experiments.E11DistributedPipeline},
		{"E12", experiments.E12CompleteSiblings},
		{"E13", experiments.E13PortfolioPhases},
		{"E14", experiments.E14BitsetKernels},
		{"E15", experiments.E15WeightedOracles},
		{"F1", experiments.F1DecayCurve},
		{"F2", experiments.F2LocalityHistogram},
		{"F3", experiments.F3LambdaVsDensity},
		{"A1", experiments.A1ImplicitVsExplicit},
		{"A2", experiments.A2CliqueBound},
		{"A3", experiments.A3OrderSensitivity},
	}
}

// generatorIDs returns the experiment ids in rendering order.
func generatorIDs() []string {
	gens := generators()
	ids := make([]string, len(gens))
	for i, g := range gens {
		ids[i] = g.id
	}
	return ids
}

// validateOracle fails fast on a bad -oracle value so the whole suite is
// not run before E13 finally rejects it. Empty selects the E13 default.
func validateOracle(name string, seed int64) error {
	if name == "" {
		return nil
	}
	if !strings.HasPrefix(name, "portfolio:") {
		return fmt.Errorf("-oracle %q is not a portfolio:<a>,<b>,... name", name)
	}
	if _, err := maxis.Lookup(name, seed); err != nil {
		return fmt.Errorf("-oracle: %w", err)
	}
	return nil
}

// parseOnly turns the -only flag into the wanted-id set: comma-separated,
// case-insensitive, whitespace-tolerant. Empty input selects everything
// (an empty map).
func parseOnly(only string) map[string]bool {
	want := map[string]bool{}
	if only == "" {
		return want
	}
	for _, id := range strings.Split(only, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	return want
}

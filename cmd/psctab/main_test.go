package main

import (
	"reflect"
	"runtime"
	"testing"

	"pslocal/internal/engine"
)

func TestParseOnly(t *testing.T) {
	tests := []struct {
		in   string
		want map[string]bool
	}{
		{"", map[string]bool{}},
		{"E4", map[string]bool{"E4": true}},
		{"e4, f1 ,A3", map[string]bool{"E4": true, "F1": true, "A3": true}},
		{"E13", map[string]bool{"E13": true}},
	}
	for _, tt := range tests {
		if got := parseOnly(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseOnly(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWorkersFlagConvention(t *testing.T) {
	// The -workers flag maps through engine.FromWorkersFlag: 0 = "as wide
	// as the hardware" (Parallel, resolving to GOMAXPROCS), anything else
	// is the literal pool width.
	if got := engine.FromWorkersFlag(0).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("workers=0 resolves to %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := engine.FromWorkersFlag(1); !got.Serial() {
		t.Errorf("workers=1 should be the serial path, got %+v", got)
	}
	if got := engine.FromWorkersFlag(3).WorkerCount(); got != 3 {
		t.Errorf("workers=3 resolves to %d, want 3", got)
	}
}

func TestValidateOracleFailsFast(t *testing.T) {
	if err := validateOracle("", 1); err != nil {
		t.Errorf("empty -oracle rejected: %v", err)
	}
	if err := validateOracle("portfolio:greedy-mindeg,clique-removal", 1); err != nil {
		t.Errorf("valid portfolio rejected: %v", err)
	}
	if err := validateOracle("greedy-mindeg", 1); err == nil {
		t.Error("non-portfolio -oracle accepted")
	}
	if err := validateOracle("portfolio:no-such-oracle", 1); err == nil {
		t.Error("unknown member accepted")
	}
}

// TestGeneratorIndexCoversE1ToE15 pins the doc-comment claim: the suite
// runs E1–E15, F1–F3 and A1–A3 (the DESIGN.md Section 4 index).
func TestGeneratorIndexCoversE1ToE15(t *testing.T) {
	want := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "F1", "F2", "F3", "A1", "A2", "A3",
	}
	got := generatorIDs()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("generator index = %v, want %v", got, want)
	}
}

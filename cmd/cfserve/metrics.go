package main

// metrics.go is the cfserve metrics surface: one pslocal.MetricsRegistry
// renders GET /metrics in the Prometheus text format, and /statz renders
// from the very same handles, so the two exposition endpoints can never
// disagree. Request counters and the latency-track histograms are typed
// handles the handlers hit directly; cache, admission and job-lifecycle
// series read through func-backed gauges/counters at scrape time.
//
// The latency tracks keep the shape the /statz document has always
// carried: reduce, maxis and jobs_submit time whole successful requests,
// and every solve sample additionally lands in cache_hit or cache_miss
// (hot instance-cache path vs cold parse+CSR).

import (
	"time"

	"pslocal"
)

// serverMetrics owns the registry and the hot-path handles.
type serverMetrics struct {
	reg *pslocal.MetricsRegistry

	requests *pslocal.MetricsCounter // all requests, any endpoint
	reduces  *pslocal.MetricsCounter // successful /v1/reduce responses
	solves   *pslocal.MetricsCounter // successful /v1/maxis responses
	failures *pslocal.MetricsCounter // 4xx/5xx responses
	canceled *pslocal.MetricsCounter // requests abandoned mid-solve

	reduce     *pslocal.MetricsHistogram
	maxis      *pslocal.MetricsHistogram
	jobsSubmit *pslocal.MetricsHistogram
	cacheHit   *pslocal.MetricsHistogram
	cacheMiss  *pslocal.MetricsHistogram
}

// newServerMetrics builds the registry over the shared solver and job
// manager; the func-backed series snapshot their stats at scrape time.
func newServerMetrics(sv *pslocal.Solver, jm *pslocal.JobManager) *serverMetrics {
	reg := pslocal.NewMetricsRegistry()
	m := &serverMetrics{
		reg:      reg,
		requests: reg.Counter("pslocal_requests_total", "HTTP requests received, any endpoint."),
		reduces: reg.Counter("pslocal_solves_total", "Successful synchronous solves by endpoint.",
			pslocal.MetricsLabel{Key: "endpoint", Value: "reduce"}),
		solves: reg.Counter("pslocal_solves_total", "Successful synchronous solves by endpoint.",
			pslocal.MetricsLabel{Key: "endpoint", Value: "maxis"}),
		failures: reg.Counter("pslocal_failures_total", "Requests answered 4xx or 5xx."),
		canceled: reg.Counter("pslocal_canceled_total", "Requests abandoned by the client mid-solve."),
	}
	const durName = "pslocal_request_duration_seconds"
	const durHelp = "Request latency by track; solve samples land in their endpoint track and in cache_hit or cache_miss."
	track := func(name string) *pslocal.MetricsHistogram {
		return reg.Histogram(durName, durHelp, pslocal.MetricsLabel{Key: "track", Value: name})
	}
	m.reduce = track("reduce")
	m.maxis = track("maxis")
	m.jobsSubmit = track("jobs_submit")
	m.cacheHit = track("cache_hit")
	m.cacheMiss = track("cache_miss")

	reg.GaugeFunc("pslocal_inflight", "Currently admitted solves.",
		func() float64 { return float64(sv.InFlight()) })
	reg.GaugeFunc("pslocal_max_inflight", "Admission gate capacity (0 = unbounded).",
		func() float64 { return float64(sv.MaxInFlight()) })
	reg.CounterFunc("pslocal_cache_hits_total", "Instance cache hits.",
		func() float64 { return float64(sv.CacheStats().Hits) })
	reg.CounterFunc("pslocal_cache_misses_total", "Instance cache misses.",
		func() float64 { return float64(sv.CacheStats().Misses) })
	reg.CounterFunc("pslocal_cache_evictions_total", "Instance cache evictions.",
		func() float64 { return float64(sv.CacheStats().Evictions) })
	reg.GaugeFunc("pslocal_cache_entries", "Instance cache resident entries.",
		func() float64 { return float64(sv.CacheStats().Entries) })

	jobCounter := func(name, help string, read func(pslocal.JobStats) uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(read(jm.Stats())) })
	}
	jobCounter("pslocal_jobs_submitted_total", "Jobs accepted by Submit (dedupes excluded).",
		func(s pslocal.JobStats) uint64 { return s.Submitted })
	jobCounter("pslocal_jobs_deduped_total", "Submits answered by an existing job.",
		func(s pslocal.JobStats) uint64 { return s.Deduped })
	jobCounter("pslocal_jobs_completed_total", "Jobs that reached done.",
		func(s pslocal.JobStats) uint64 { return s.Completed })
	jobCounter("pslocal_jobs_failed_total", "Jobs that reached failed.",
		func(s pslocal.JobStats) uint64 { return s.Failed })
	jobCounter("pslocal_jobs_cancelled_total", "Jobs that reached cancelled.",
		func(s pslocal.JobStats) uint64 { return s.Cancelled })
	jobCounter("pslocal_jobs_retries_total", "Transient re-runs across all jobs.",
		func(s pslocal.JobStats) uint64 { return s.Retries })
	jobCounter("pslocal_jobs_recovered_total", "Jobs restored from the store at startup.",
		func(s pslocal.JobStats) uint64 { return s.Recovered })
	jobCounter("pslocal_jobs_adopted_total", "Jobs adopted from a shared store after startup.",
		func(s pslocal.JobStats) uint64 { return s.Adopted })
	reg.GaugeFunc("pslocal_jobs_queue_depth", "Jobs waiting in the queue.",
		func() float64 { return float64(jm.Stats().QueueDepth) })
	reg.GaugeFunc("pslocal_jobs_running", "Jobs currently running on workers.",
		func() float64 { return float64(jm.Stats().Running) })
	return m
}

// observeSolve feeds one successful solve into its endpoint track and
// into the cache-disposition split.
func (m *serverMetrics) observeSolve(endpoint *pslocal.MetricsHistogram, d time.Duration, cacheHit bool) {
	endpoint.Observe(d)
	if cacheHit {
		m.cacheHit.Observe(d)
	} else {
		m.cacheMiss.Observe(d)
	}
}

// latencySnapshot renders the /statz latency map from the track handles.
func (m *serverMetrics) latencySnapshot() map[string]pslocal.MetricsHistSnapshot {
	return map[string]pslocal.MetricsHistSnapshot{
		"reduce":      m.reduce.Snapshot(),
		"maxis":       m.maxis.Snapshot(),
		"jobs_submit": m.jobsSubmit.Snapshot(),
		"cache_hit":   m.cacheHit.Snapshot(),
		"cache_miss":  m.cacheMiss.Snapshot(),
	}
}

package main

// weighted_test.go covers vertex-weighted instances over the HTTP
// surface: the weighted instance flag, the total_weight field on /v1/maxis
// responses, and the weight fields of the /v1/reduce result document.

import (
	"bytes"
	"net/http"
	"testing"

	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
)

// weightedStarBody encodes a 5-vertex star whose centre outweighs all
// leaves together, so a weight-aware oracle must pick the centre alone.
func weightedStarBody(t *testing.T) []byte {
	t.Helper()
	b := graph.NewBuilder(5)
	for leaf := int32(1); leaf < 5; leaf++ {
		b.AddEdge(0, leaf)
	}
	b.SetWeight(0, 100)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := graphio.WriteGraph(&buf, g, graphio.FormatJSON); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	return buf.Bytes()
}

func TestMaxISWeightedInstance(t *testing.T) {
	_, ts := newTestServer(t)
	var got maxisResponse
	resp := postInstance(t, ts.URL+"/v1/maxis?oracle=greedy-mindeg&format=json", weightedStarBody(t), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !got.Instance.Weighted {
		t.Error("instance not flagged weighted")
	}
	if !got.Verified {
		t.Error("result not verified")
	}
	if got.TotalWeight != 100 || len(got.IndependentSet) != 1 || got.IndependentSet[0] != 0 {
		t.Errorf("weighted solve returned set %v with total_weight %d, want [0] at 100",
			got.IndependentSet, got.TotalWeight)
	}

	// The unweighted twin reports cardinality as total_weight and no flag.
	var buf bytes.Buffer
	b := graph.NewBuilder(5)
	for leaf := int32(1); leaf < 5; leaf++ {
		b.AddEdge(0, leaf)
	}
	if err := graphio.WriteGraph(&buf, b.MustBuild(), graphio.FormatJSON); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	var ugot maxisResponse
	resp = postInstance(t, ts.URL+"/v1/maxis?oracle=greedy-mindeg&format=json", buf.Bytes(), &ugot)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ugot.Instance.Weighted {
		t.Error("unweighted instance flagged weighted")
	}
	if ugot.TotalWeight != int64(len(ugot.IndependentSet)) {
		t.Errorf("unweighted total_weight %d != size %d", ugot.TotalWeight, len(ugot.IndependentSet))
	}
}

func TestMaxISWeightedBipartiteExactIs422(t *testing.T) {
	_, ts := newTestServer(t)
	var got map[string]any
	resp := postInstance(t, ts.URL+"/v1/maxis?oracle=bipartite-exact&format=json", weightedStarBody(t), &got)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 for a weighted instance on bipartite-exact", resp.StatusCode)
	}
}

func TestReduceWeightedHypergraph(t *testing.T) {
	_, ts := newTestServer(t)
	h, err := hypergraph.NewWeighted(6,
		[][]int32{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}},
		[]int64{10, 1, 1, 20, 1, 1})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	var buf bytes.Buffer
	if err := graphio.WriteHypergraph(&buf, h, graphio.FormatJSON); err != nil {
		t.Fatalf("WriteHypergraph: %v", err)
	}
	var got struct {
		Instance instanceInfo `json:"instance"`
		Verified bool         `json:"verified"`
		Result   struct {
			Weighted    bool  `json:"weighted"`
			TotalWeight int64 `json:"total_weight"`
			Phases      []struct {
				ISSize   int   `json:"is_size"`
				ISWeight int64 `json:"is_weight"`
			} `json:"phases"`
		} `json:"result"`
	}
	resp := postInstance(t, ts.URL+"/v1/reduce?k=2&format=json", buf.Bytes(), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !got.Instance.Weighted {
		t.Error("instance not flagged weighted")
	}
	if !got.Verified {
		t.Error("result not verified")
	}
	if !got.Result.Weighted || got.Result.TotalWeight <= 0 || got.Result.TotalWeight > h.TotalWeight() {
		t.Errorf("result weight fields: weighted=%v total_weight=%d (instance total %d)",
			got.Result.Weighted, got.Result.TotalWeight, h.TotalWeight())
	}
	for i, ph := range got.Result.Phases {
		if ph.ISWeight < int64(ph.ISSize) {
			t.Errorf("phase %d: is_weight %d < is_size %d", i, ph.ISWeight, ph.ISSize)
		}
	}
}

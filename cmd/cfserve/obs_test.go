package main

// obs_test.go covers the observability surface end to end over HTTP:
// GET /metrics serves a Prometheus exposition whose families match the
// /statz counters, ?trace=1 embeds a span tree whose children account
// for no more than the root's duration, GET /v1/traces retains finished
// traces newest-first, and every response echoes a request id — the
// caller's when valid, a fresh one otherwise.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"pslocal"
)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	var out json.RawMessage
	if resp := postInstance(t, ts.URL+"/v1/reduce?k=2&oracle=greedy-mindeg", body, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("reduce status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 text exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE pslocal_requests_total counter",
		"# TYPE pslocal_request_duration_seconds histogram",
		`pslocal_solves_total{endpoint="reduce"} 1`,
		`pslocal_request_duration_seconds_count{track="reduce"} 1`,
		"pslocal_cache_misses_total 1",
		"pslocal_jobs_submitted_total 0",
		"pslocal_inflight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// /statz and /metrics render from the same registry handles.
	st := getStatz(t, ts.URL)
	if st.Reduces != 1 || st.Latency["reduce"].Count != 1 {
		t.Errorf("statz disagrees with the exposition: reduces=%d latency=%+v", st.Reduces, st.Latency["reduce"])
	}
}

// sumTopLevel adds the top-level span durations of a trace snapshot.
func sumTopLevel(spans []pslocal.TraceSpanSnapshot) int64 {
	var total int64
	for _, sp := range spans {
		total += sp.DurUS
	}
	return total
}

func TestTraceEmbedding(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)

	// Without ?trace=1 the response carries no trace.
	var plain reduceResponse
	if resp := postInstance(t, ts.URL+"/v1/reduce?k=2&oracle=greedy-mindeg", body, &plain); resp.StatusCode != http.StatusOK {
		t.Fatalf("reduce status %d", resp.StatusCode)
	}
	if plain.Trace != nil {
		t.Fatal("trace embedded without ?trace=1")
	}

	var traced reduceResponse
	if resp := postInstance(t, ts.URL+"/v1/reduce?k=2&oracle=greedy-mindeg&trace=1", body, &traced); resp.StatusCode != http.StatusOK {
		t.Fatalf("traced reduce status %d", resp.StatusCode)
	}
	tr := traced.Trace
	if tr == nil {
		t.Fatal("?trace=1 response carries no trace")
	}
	if tr.Op != "reduce" {
		t.Errorf("root op = %q, want reduce", tr.Op)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if got := sumTopLevel(tr.Spans); got > tr.DurUS {
		t.Errorf("top-level span durations sum to %dus > root %dus", got, tr.DurUS)
	}
	names := make(map[string]bool)
	var phase *pslocal.TraceSpanSnapshot
	for i := range tr.Spans {
		names[tr.Spans[i].Name] = true
		if tr.Spans[i].Name == "phase" {
			phase = &tr.Spans[i]
		}
	}
	for _, want := range []string{"gate_wait", "cache_lookup", "phase"} {
		if !names[want] {
			t.Errorf("trace lacks a %q span (got %v)", want, names)
		}
	}
	if phase == nil {
		t.Fatal("no phase span")
	}
	if phase.Phase != 1 || phase.N <= 0 || phase.M <= 0 || phase.ISSize <= 0 {
		t.Errorf("phase span not annotated: %+v", phase)
	}
	var child []string
	for _, c := range phase.Children {
		child = append(child, c.Name)
	}
	if len(child) != 2 || child[0] != "csr_build" || child[1] != "oracle_solve" {
		t.Errorf("phase children = %v, want [csr_build oracle_solve]", child)
	}
}

func TestTracesEndpointRetainsNewestFirst(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	var out json.RawMessage
	for i := 0; i < 3; i++ {
		if resp := postInstance(t, ts.URL+"/v1/reduce?k=2&oracle=greedy-mindeg", body, &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("reduce %d status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/traces?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Total  uint64                  `json:"total"`
		Count  int                     `json:"count"`
		Traces []pslocal.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 3 || doc.Count != 2 || len(doc.Traces) != 2 {
		t.Fatalf("total=%d count=%d len=%d, want 3/2/2", doc.Total, doc.Count, len(doc.Traces))
	}
	for _, snap := range doc.Traces {
		if snap.Op != "reduce" {
			t.Errorf("retained op = %q, want reduce", snap.Op)
		}
	}

	if r2, err := http.Get(ts.URL + "/v1/traces?limit=bogus"); err != nil {
		t.Fatal(err)
	} else {
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("bad limit answered %d, want 400", r2.StatusCode)
		}
	}
}

func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t)

	get := func(header string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(pslocal.RequestIDHeader, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get(pslocal.RequestIDHeader)
	}

	if got := get("smoke-req-42"); got != "smoke-req-42" {
		t.Errorf("valid id not echoed: got %q", got)
	}
	if got := get(""); !pslocal.ValidRequestID(got) {
		t.Errorf("no id supplied, response carries invalid id %q", got)
	}
	if got := get("bad id!"); got == "bad id!" || !pslocal.ValidRequestID(got) {
		t.Errorf("invalid id not replaced: got %q", got)
	}
}

// Command cfserve serves the reduction pipeline over HTTP: POST a
// hypergraph (or graph) in any internal/graphio format, pick the oracle
// and worker count per request, and get the result back as JSON —
// Maus's Theorem 1.1 reduction as a request/response service.
//
// Endpoints:
//
//	POST   /v1/reduce       conflict-free multicolouring of the posted hypergraph
//	                        ?k=3&oracle=implicit|exact|<registry name>&workers=N&seed=S&format=auto|edgelist|dimacs|json
//	POST   /v1/maxis        independent set of the posted graph
//	                        ?oracle=<registry name>&algorithm=oracle|carving&delta=1.0&workers=N&seed=S&format=...
//	POST   /v1/jobs         enqueue the posted hypergraph as an async job, returns the id immediately
//	                        (same parameters as /v1/reduce, plus priority=low|normal|high,
//	                        deadline_ms=N, max_retries=N, label=...)
//	GET    /v1/jobs/{id}    job state; embeds the result document once done
//	GET    /v1/jobs         job list, ?state=queued|running|done|failed|cancelled&label=...&limit=N
//	DELETE /v1/jobs/{id}    cooperative cancellation
//	GET    /v1/jobs/{id}/events  state transitions as server-sent events
//	GET    /healthz         liveness (200 even while draining)
//	GET    /readyz          readiness (503 while draining — what cfgate probes)
//	POST   /drainz          start a graceful drain: stop admitting, finish running jobs
//	GET    /statz           request/cache/inflight/job counters as JSON
//	GET    /metrics         the same counters as a Prometheus text exposition
//	GET    /v1/traces       recent solve traces newest-first, ?limit=N (ring sized by -trace-ring)
//
// Observability: ?trace=1 on the solve endpoints embeds the per-phase
// span tree in the response; every response echoes (or mints) an
// X-Pslocal-Request-Id correlation id, also stamped on traces and job
// metadata; requests at or above -slow-ms log a structured warning.
//
// With -jobs-dir set, jobs persist their results there as graphio result
// documents named by the job's content hash; on restart the directory is
// rescanned, so completed jobs survive reboots and identical
// resubmissions dedupe onto the stored result. The store assumes a
// single writer: give every cfserve instance its own directory. Without
// -jobs-dir, jobs live in memory only.
//
// Quick start (the same instance ships in testdata/quickstart.json and is
// smoke-tested by CI):
//
//	cfserve -addr :8355 &
//	curl -fsS -X POST --data-binary @cmd/cfserve/testdata/quickstart.json \
//	  'http://localhost:8355/v1/reduce?k=3&oracle=greedy-mindeg&workers=2'
//
// Concurrency: at most -max-inflight solves run at once (excess requests
// queue at the admission gate, honouring per-request cancellation), and
// each request's worker fan-out is capped by -max-workers. Parsed
// instances are cached by content hash (-cache-entries), so repeated
// submissions of a hot graph skip parsing and CSR construction. Behind
// cfgate the cache key arrives precomputed in X-Pslocal-Instance-Key
// and the keyed readers skip re-hashing.
//
// Shutdown: SIGTERM (or POST /drainz) drains gracefully — /readyz flips
// to 503 so the gateway stops routing here (when /readyz is being
// probed, the listener stays open up to -drain-grace so the prober
// observes the drain before connections start refusing), new solve and
// job submissions are refused with 503 + Retry-After, in-flight
// requests and running jobs finish (bounded by -drain-timeout), and
// only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cfserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8355", "listen address")
		maxWorkers   = flag.Int("max-workers", 0, "per-request worker cap (0 = GOMAXPROCS)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent solve bound (0 = GOMAXPROCS)")
		cacheEntries = flag.Int("cache-entries", 128, "parsed-instance cache capacity")
		maxBodyMB    = flag.Int64("max-body-mb", 64, "request body cap in MiB")
		seed         = flag.Int64("seed", 1, "default oracle seed when the request has none")
		jobsDir      = flag.String("jobs-dir", "",
			"persistent job store directory, rescanned on restart (empty = in-memory only; each instance needs its own directory)")
		jobWorkers = flag.Int("job-workers", 0, "job worker pool width (0 = GOMAXPROCS)")
		jobQueue   = flag.Int("job-queue", 1024, "job queue capacity across priority lanes")
		pprofAddr  = flag.String("pprof", "",
			"pprof listen address, e.g. localhost:6060 (empty = disabled; served on its own mux, never on -addr)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"bound on finishing in-flight requests and running jobs at shutdown")
		drainGrace = flag.Duration("drain-grace", 2*time.Second,
			"how long SIGTERM keeps the listener open after flipping /readyz to 503, so a probing gateway ejects the node before connections refuse (0 = close immediately; skipped when nothing probes /readyz)")
		slowMS = flag.Int64("slow-ms", 1000,
			"log a structured warning for requests at or above this many milliseconds (0 = disabled)")
		traceRing = flag.Int("trace-ring", 128,
			"how many finished solve traces GET /v1/traces retains")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "cfserve")

	if *pprofAddr != "" {
		// Profiling gets its own mux on its own listener: the service mux
		// stays free of debug handlers, and binding -pprof to localhost
		// keeps profiles off the public address entirely.
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening", "url", "http://"+*pprofAddr+"/debug/pprof/")
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	s, err := newServer(config{
		maxWorkers:   *maxWorkers,
		maxInflight:  *maxInflight,
		cacheEntries: *cacheEntries,
		maxBodyBytes: *maxBodyMB << 20,
		seed:         *seed,
		jobsDir:      *jobsDir,
		jobWorkers:   *jobWorkers,
		jobQueueCap:  *jobQueue,
		slow:         time.Duration(*slowMS) * time.Millisecond,
		traceRing:    *traceRing,
		logger:       logger,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		store := *jobsDir
		if store == "" {
			store = "in-memory"
		}
		logger.Info("listening",
			"addr", *addr,
			"endpoints", "POST /v1/reduce, POST /v1/maxis, /v1/jobs..., GET /metrics, GET /v1/traces, GET /healthz, GET /statz",
			"job_store", store)
		errc <- httpServer.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		// Drain order matters: flip readiness first so the gateway stops
		// routing here, let its prober observe the 503, flush in-flight
		// HTTP requests, then wait for running and queued jobs — all
		// under one deadline. The deferred Close cancels whatever the
		// deadline cut off.
		logger.Info("draining on signal", "signal", sig.String(), "timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		s.draining.Store(true)
		// Shutdown closes the listeners at once, and a gateway that has
		// not yet seen the 503 readiness would keep routing here and get
		// connection refusals instead of retryable 503s. So when /readyz
		// is being probed, hold the listener open until enough probes
		// observed the drain for cfgate's default ejection threshold (or
		// the grace runs out). A node nobody probes skips the wait.
		if grace := *drainGrace; grace > 0 && s.readyProbedWithin(grace) {
			select {
			case <-s.drainEjected:
			case <-time.After(grace):
			case <-ctx.Done():
			}
		}
		if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if err := s.Drain(ctx); err != nil {
			logger.Warn("drain incomplete, remaining jobs cancel", "err", err)
		} else {
			logger.Info("drained, exiting")
		}
		return nil
	}
}

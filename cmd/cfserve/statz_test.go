package main

// statz_test.go covers the /statz latency histograms: per-endpoint
// tracks populate as requests land, the solve samples split into
// cache_hit vs cache_miss (a cold parse followed by a hot resubmission
// must feed one sample into each), job submissions feed jobs_submit,
// and the histogram math itself is pinned by direct unit tests.

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// getStatz fetches and decodes /statz.
func getStatz(t *testing.T, baseURL string) statzResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statz status %d", resp.StatusCode)
	}
	var st statzResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStatzLatencyTracks(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)

	// Before any traffic every track exists and is empty.
	st := getStatz(t, ts.URL)
	for _, track := range []string{"reduce", "maxis", "jobs_submit", "cache_hit", "cache_miss"} {
		snap, ok := st.Latency[track]
		if !ok {
			t.Fatalf("track %q missing from /statz", track)
		}
		if snap.Count != 0 {
			t.Fatalf("track %q nonzero before traffic: %+v", track, snap)
		}
	}

	// Cold reduce then identical resubmission: one miss, one hit.
	var out json.RawMessage
	resp := postInstance(t, ts.URL+"/v1/reduce?k=2&oracle=greedy-mindeg", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold reduce status %d", resp.StatusCode)
	}
	resp = postInstance(t, ts.URL+"/v1/reduce?k=2&oracle=greedy-mindeg", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm reduce status %d", resp.StatusCode)
	}

	st = getStatz(t, ts.URL)
	if got := st.Latency["reduce"].Count; got != 2 {
		t.Fatalf("reduce count = %d, want 2", got)
	}
	if got := st.Latency["cache_miss"].Count; got != 1 {
		t.Fatalf("cache_miss count = %d, want 1 (the cold parse)", got)
	}
	if got := st.Latency["cache_hit"].Count; got != 1 {
		t.Fatalf("cache_hit count = %d, want 1 (the resubmission)", got)
	}
	for _, track := range []string{"reduce", "cache_miss"} {
		snap := st.Latency[track]
		if snap.MaxMS <= 0 || snap.MeanMS <= 0 {
			t.Fatalf("track %q has no timing: %+v", track, snap)
		}
		if snap.P50MS > snap.P95MS || snap.P95MS > snap.P99MS {
			t.Fatalf("track %q quantiles not monotone: %+v", track, snap)
		}
	}

	// A failing request must not touch the histograms.
	resp, err := http.Post(ts.URL+"/v1/reduce?k=0", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k status %d", resp.StatusCode)
	}
	if got := getStatz(t, ts.URL).Latency["reduce"].Count; got != 2 {
		t.Fatalf("failed request entered the reduce histogram: count %d", got)
	}

	// A job submission lands in jobs_submit, not in the solve tracks.
	var jobOut struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	resp = postInstance(t, ts.URL+"/v1/jobs?k=2&oracle=greedy-mindeg", body, &jobOut)
	if resp.StatusCode != http.StatusAccepted || jobOut.Job.ID == "" {
		t.Fatalf("job submit: status %d, %+v", resp.StatusCode, jobOut)
	}
	st = getStatz(t, ts.URL)
	if got := st.Latency["jobs_submit"].Count; got != 1 {
		t.Fatalf("jobs_submit count = %d, want 1", got)
	}
	if got := st.Latency["reduce"].Count; got != 2 {
		t.Fatalf("job submission leaked into the reduce track: count %d", got)
	}
	// Job wait/run sums flow through the same /statz document; Started
	// and Finished are the new denominators cfload consumes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = getStatz(t, ts.URL)
		if st.Jobs.Finished >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st.Jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Jobs.Started < 1 || st.Jobs.RunSumMS < 0 || st.Jobs.WaitSumMS < 0 {
		t.Fatalf("jobs split implausible: %+v", st.Jobs)
	}
}

func TestStatzMaxISLatencyTrack(t *testing.T) {
	_, ts := newTestServer(t)
	// A small path graph in the native edge-list form.
	body := []byte("graph 4 3\n0 1\n1 2\n2 3\n")
	var out json.RawMessage
	resp := postInstance(t, ts.URL+"/v1/maxis?oracle=greedy-mindeg", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maxis status %d: %s", resp.StatusCode, out)
	}
	st := getStatz(t, ts.URL)
	if got := st.Latency["maxis"].Count; got != 1 {
		t.Fatalf("maxis count = %d, want 1", got)
	}
	if st.Latency["cache_miss"].Count != 1 {
		t.Fatalf("maxis cold solve missing from cache_miss: %+v", st.Latency)
	}
}

package main

// traces.go is the solve-tracing surface: every synchronous solve runs
// under a pooled pslocal.Trace (job runs get theirs from the job
// manager), finished traces land in a bounded ring served by
// GET /v1/traces?limit=N, and ?trace=1 on /v1/reduce and /v1/maxis
// embeds the span tree in the response. Traces are pooled because a
// trace preallocates its whole span store — steady state reuses it
// instead of paying the allocation per request.

import (
	"fmt"
	"net/http"
	"sync"

	"pslocal"
)

var tracePool = sync.Pool{New: func() any { return pslocal.NewTrace("", "") }}

// grabTrace leases a reset trace for one request.
func grabTrace(op, requestID string) *pslocal.Trace {
	tr := tracePool.Get().(*pslocal.Trace)
	tr.Reset(op, requestID)
	return tr
}

// finishTrace closes the trace, publishes its snapshot to the ring, and
// returns the trace to the pool. The returned snapshot is safe to embed
// in the response (snapshots are immutable copies).
func (s *server) finishTrace(tr *pslocal.Trace) *pslocal.TraceSnapshot {
	tr.Finish()
	snap := tr.Snapshot()
	s.traces.Push(snap)
	tracePool.Put(tr)
	return snap
}

// handleTraces serves the retained trace snapshots, newest first.
// ?limit=N bounds the response (0 = everything retained).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit, err := intParam(r.URL.Query().Get("limit"), 0)
	if err != nil || limit < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad limit parameter %q", r.URL.Query().Get("limit")))
		return
	}
	snaps := s.traces.Snapshot(limit)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"total":  s.traces.Total(),
		"count":  len(snaps),
		"traces": snaps,
	})
}

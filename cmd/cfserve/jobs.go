package main

// jobs.go implements the asynchronous half of the service: the /v1/jobs
// API over the shared job manager. Where /v1/reduce holds the connection
// open for the whole reduction, POST /v1/jobs enqueues and returns a job
// id immediately; clients poll GET /v1/jobs/{id}, stream transitions from
// GET /v1/jobs/{id}/events (SSE), list with GET /v1/jobs, and cancel
// cooperatively with DELETE /v1/jobs/{id}. Job bodies take the same
// formats and query parameters as /v1/reduce, plus priority, deadline_ms,
// max_retries and label.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"pslocal"
)

// jobResponse is the envelope of every job endpoint: the snapshot, the
// derived latencies, and — for done jobs on GET — the persisted graphio
// result document.
type jobResponse struct {
	Job    pslocal.JobInfo `json:"job"`
	WaitMS float64         `json:"wait_ms"`
	RunMS  float64         `json:"run_ms"`
	Result json.RawMessage `json:"result,omitempty"`
}

// jobEnvelope assembles the response shape from a snapshot.
func jobEnvelope(info pslocal.JobInfo) jobResponse {
	return jobResponse{Job: info, WaitMS: info.WaitMS(), RunMS: info.RunMS()}
}

// handleJobSubmit enqueues the posted instance as a job and returns its
// id without waiting: 202 for a new job, 200 when the content hash
// dedupes onto an existing one, 503 (with Retry-After) at the queue
// bound.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	q := r.URL.Query()
	params := pslocal.JobParams{}
	k, err := intParam(q.Get("k"), 0)
	if err != nil || k < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad k parameter %q (want a positive integer)", q.Get("k")))
		return
	}
	params.K = k
	params.Oracle = q.Get("oracle")
	workers, err := intParam(q.Get("workers"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q.Get("workers")))
		return
	}
	if workers != 0 {
		params.Workers = s.clampWorkers(workers)
	}
	seed, err := int64Param(q.Get("seed"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad seed parameter %q", q.Get("seed")))
		return
	}
	params.Seed = seed
	priority, err := pslocal.ParseJobPriority(q.Get("priority"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	deadlineMS, err := int64Param(q.Get("deadline_ms"), 0)
	if err != nil || deadlineMS < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad deadline_ms parameter %q", q.Get("deadline_ms")))
		return
	}
	maxRetries, err := intParam(q.Get("max_retries"), 0)
	if err != nil || maxRetries < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad max_retries parameter %q", q.Get("max_retries")))
		return
	}

	started := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, err)
		} else {
			s.fail(w, http.StatusBadRequest, err)
		}
		return
	}
	info, accepted, err := s.jobs.Submit(pslocal.JobRequest{
		Body:       body,
		Format:     q.Get("format"),
		Params:     params,
		Priority:   priority,
		Deadline:   time.Duration(deadlineMS) * time.Millisecond,
		MaxRetries: maxRetries,
		Label:      q.Get("label"),
		RequestID:  r.Header.Get(pslocal.RequestIDHeader),
	})
	if err != nil {
		s.failJob(w, err)
		return
	}
	status := http.StatusAccepted
	if !accepted { // idempotent resubmission: report the existing job
		status = http.StatusOK
	}
	s.met.jobsSubmit.Observe(time.Since(started))
	s.writeJSON(w, status, jobEnvelope(info))
}

// handleJobGet reports one job; a done job's response embeds the
// persisted result document.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	resp := jobEnvelope(info)
	if info.State == pslocal.JobDone {
		res, err := s.jobs.Result(info.ID)
		if err != nil {
			// A done job whose store entry vanished maps through the job
			// taxonomy (409), not a server fault.
			s.failJob(w, err)
			return
		}
		var doc bytes.Buffer
		if err := pslocal.WriteResult(&doc, res); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		resp.Result = json.RawMessage(doc.Bytes())
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleJobList reports jobs in submission order, filtered by the state,
// label and limit query parameters.
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter := pslocal.JobFilter{Label: q.Get("label")}
	if raw := q.Get("state"); raw != "" {
		state, err := pslocal.ParseJobState(raw)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		filter.State = state
	}
	limit, err := intParam(q.Get("limit"), 0)
	if err != nil || limit < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad limit parameter %q", q.Get("limit")))
		return
	}
	filter.Limit = limit
	infos := s.jobs.List(filter)
	jobs := make([]jobResponse, len(infos))
	for i, info := range infos {
		jobs[i] = jobEnvelope(info)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"count": len(jobs), "jobs": jobs})
}

// handleJobCancel requests cooperative cancellation; the response is the
// snapshot right after the request (a running job transitions
// asynchronously once its solve unwinds).
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, jobEnvelope(info))
}

// handleJobEvents streams the job's lifecycle as server-sent events: the
// first event is the state at subscription time, the stream ends after
// the terminal transition (or when the client goes away).
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	events, stop, err := s.jobs.Watch(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	defer stop()
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, data); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// failJob maps job-layer errors onto statuses: unknown ids are 404, a
// full queue or a draining manager is 503 with a retry hint, a closing
// server is 503, and the instance/format taxonomy reuses the solve
// mapping.
func (s *server) failJob(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pslocal.ErrJobNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, pslocal.ErrJobQueueFull),
		errors.Is(err, pslocal.ErrJobDraining):
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, pslocal.ErrJobManagerClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, pslocal.ErrNoJobResult):
		s.fail(w, http.StatusConflict, err)
	default:
		s.failSolve(w, err)
	}
}

package main

// drain_test.go covers the cluster-mode server lifecycle: the
// liveness/readiness split, /drainz, the refusal of new work while
// draining, the SIGTERM drain path finishing running jobs instead of
// abandoning them (the regression this file exists for), and the
// gateway's X-Pslocal-Instance-Key fast path through the keyed readers.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"pslocal"
	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/maxis"
)

// drainGateOracle signals each Solve entry and parks until released,
// then delegates to a real oracle — unlike blockOracle it lets the held
// job finish cleanly, which is what a drain test needs.
type drainGateOracle struct {
	mu      sync.Mutex
	eng     engine.Options
	started chan struct{}
	release chan struct{}
	inner   maxis.Oracle
}

func newDrainGateOracle(t *testing.T) *drainGateOracle {
	t.Helper()
	inner, err := maxis.Lookup("greedy-mindeg", 1)
	if err != nil {
		t.Fatal(err)
	}
	return &drainGateOracle{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
		inner:   inner,
	}
}

func (o *drainGateOracle) Name() string { return "test-gate-drain" }

func (o *drainGateOracle) SetEngine(e engine.Options) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.eng = e
}

func (o *drainGateOracle) Solve(g *graph.Graph) ([]int32, error) {
	o.mu.Lock()
	ctx := o.eng.Context()
	o.mu.Unlock()
	select {
	case o.started <- struct{}{}:
	default:
	}
	select {
	case <-o.release:
		return o.inner.Solve(g)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

var drainGate = struct {
	once   sync.Once
	oracle *drainGateOracle
}{}

// sharedDrainGate registers the gate oracle once (the registry is global
// and permanent) and resets its release channel per call site.
func sharedDrainGate(t *testing.T) *drainGateOracle {
	t.Helper()
	drainGate.once.Do(func() {
		drainGate.oracle = newDrainGateOracle(t)
		maxis.MustRegister("test-gate-drain", func(int64) maxis.Oracle { return drainGate.oracle })
	})
	return drainGate.oracle
}

// getJSON GETs url and decodes the body, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestReadyzDrainzLifecycle walks the drain state machine over HTTP:
// ready servers answer /readyz 200, /drainz flips readiness to 503 (and
// is idempotent), new solve and job submissions bounce with 503 +
// Retry-After, liveness and reads stay open throughout.
func TestReadyzDrainzLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	body := quickstartBody(t)

	var ready struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("readyz before drain: %d %q", code, ready.Status)
	}

	for i, wantStarted := range []bool{true, false} {
		var drain struct {
			Draining bool `json:"draining"`
			Started  bool `json:"started"`
		}
		resp, err := http.Post(ts.URL+"/drainz", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&drain); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !drain.Draining || drain.Started != wantStarted {
			t.Fatalf("drainz call %d: status %d, draining %t, started %t (want started %t)",
				i, resp.StatusCode, drain.Draining, drain.Started, wantStarted)
		}
	}

	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (liveness is not readiness)", code)
	}
	for _, path := range []string{"/v1/reduce?oracle=greedy-mindeg", "/v1/maxis?oracle=greedy-mindeg", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s while draining: %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("POST %s while draining: no Retry-After hint", path)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", nil); code != http.StatusOK {
		t.Errorf("GET /v1/jobs while draining: %d, want 200 (reads stay open)", code)
	}

	var statz statzResponse
	if code := getJSON(t, ts.URL+"/statz", &statz); code != http.StatusOK {
		t.Fatalf("statz: %d", code)
	}
	if statz.Ready || !statz.Draining {
		t.Errorf("statz while draining: ready %t, draining %t", statz.Ready, statz.Draining)
	}
	_ = s
}

// TestDrainFinishesRunningJob is the SIGTERM regression: the shutdown
// path used to stop the HTTP listener and exit, abandoning running jobs
// mid-solve. It now runs the same sequence as the signal handler — mark
// draining, then server.Drain — which must block until the held job
// finishes and persists, while refusing new submissions.
func TestDrainFinishesRunningJob(t *testing.T) {
	oracle := sharedDrainGate(t)
	s, ts := newTestServer(t)
	body := quickstartBody(t)

	var submitted struct {
		Job pslocal.JobInfo `json:"job"`
	}
	resp := postInstance(t, ts.URL+"/v1/jobs?oracle=test-gate-drain", body, &submitted)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: status %d", resp.StatusCode)
	}
	select {
	case <-oracle.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started solving")
	}

	// The signal handler's sequence from main.go, minus the listener.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	s.draining.Store(true)
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v while a job was still running", err)
	case <-time.After(50 * time.Millisecond):
	}
	refused, err := http.Post(ts.URL+"/v1/jobs?oracle=test-gate-drain", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", refused.StatusCode)
	}

	close(oracle.release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	var final struct {
		Job    pslocal.JobInfo `json:"job"`
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+submitted.Job.ID, &final); code != http.StatusOK {
		t.Fatalf("job after drain: status %d", code)
	}
	if final.Job.State != pslocal.JobDone {
		t.Fatalf("job after drain: state %s (error %q), want done", final.Job.State, final.Job.Error)
	}
	if len(final.Result) == 0 {
		t.Fatal("drained job has no result document")
	}
}

// TestInstanceKeyHeaderFastPath exercises the gateway protocol against
// a real server: a request carrying the precomputed instance key parses
// and caches under that key, the identical keyed resubmission hits, and
// a malformed header value falls back to hashing instead of failing.
func TestInstanceKeyHeaderFastPath(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	format, err := graphio.ParseFormat("")
	if err != nil {
		t.Fatal(err)
	}
	key := pslocal.InstanceKey(pslocal.KindHypergraph, format.String(), body)

	post := func(header string) (int, instanceInfo) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost,
			ts.URL+"/v1/reduce?k=3&oracle=greedy-mindeg", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(pslocal.HeaderInstanceKey, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var got struct {
			Instance instanceInfo `json:"instance"`
			Verified bool         `json:"verified"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK && !got.Verified {
			t.Errorf("unverified result")
		}
		return resp.StatusCode, got.Instance
	}

	code, inst := post(key)
	if code != http.StatusOK || inst.Cache != "miss" {
		t.Fatalf("first keyed request: status %d, cache %q, want 200 miss", code, inst.Cache)
	}
	if want := "sha256:" + key[:16]; inst.Key != want {
		t.Errorf("first keyed request: key %q, want %q", inst.Key, want)
	}
	code, inst = post(key)
	if code != http.StatusOK || inst.Cache != "hit" {
		t.Fatalf("second keyed request: status %d, cache %q, want 200 hit", code, inst.Cache)
	}
	code, inst = post("not-a-sha256")
	if code != http.StatusOK {
		t.Fatalf("malformed key fallback: status %d, want 200", code)
	}
}

// TestDrainGraceSignals covers the SIGTERM grace machinery: a node
// nobody probes reports no readiness watcher (so main.go skips the
// wait), and once draining, drainEjectQuorum 503 probes close the
// drainEjected channel that lets the listener shut early.
func TestDrainGraceSignals(t *testing.T) {
	s, ts := newTestServer(t)

	if s.readyProbedWithin(time.Minute) {
		t.Fatal("readiness reported as probed before any /readyz request")
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if !s.readyProbedWithin(time.Minute) {
		t.Fatal("readiness probe not recorded")
	}

	s.draining.Store(true)
	for i := 0; i < drainEjectQuorum; i++ {
		select {
		case <-s.drainEjected:
			t.Fatalf("drainEjected closed after %d probes, want %d", i, drainEjectQuorum)
		default:
		}
		if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
			t.Fatalf("draining /readyz = %d, want 503", code)
		}
	}
	select {
	case <-s.drainEjected:
	case <-time.After(2 * time.Second):
		t.Fatalf("drainEjected not closed after %d draining probes", drainEjectQuorum)
	}
}

package main

// jobs_test.go covers the /v1/jobs API surface: submit/poll/result,
// dedupe, restart recovery over a persistent store, cancellation, SSE
// events, list filtering, queue overflow, statz merging, and the JSON
// 404/405 envelope regression the satellite task pins.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pslocal"
	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/maxis"
)

var jobOracleSeq atomic.Int64

// blockingJobOracle parks Solve on its engine context; cancelling the
// job (or the server shutting down) releases it.
type blockingJobOracle struct {
	mu      sync.Mutex
	eng     engine.Options
	started chan struct{}
}

func (o *blockingJobOracle) Name() string { return "serve-jobs-block" }

func (o *blockingJobOracle) SetEngine(e engine.Options) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.eng = e
}

func (o *blockingJobOracle) Solve(*graph.Graph) ([]int32, error) {
	o.mu.Lock()
	ctx := o.eng.Context()
	o.mu.Unlock()
	select {
	case o.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// registerBlockingJobOracle installs a fresh blocking oracle under a
// unique name.
func registerBlockingJobOracle(t *testing.T) (*blockingJobOracle, string) {
	t.Helper()
	o := &blockingJobOracle{started: make(chan struct{}, 16)}
	name := fmt.Sprintf("serve-jobs-block-%d", jobOracleSeq.Add(1))
	maxis.MustRegister(name, func(int64) maxis.Oracle { return o })
	return o, name
}

// submitJob POSTs body to the jobs endpoint and decodes the envelope.
func submitJob(t *testing.T, url string, body []byte) (jobResponse, int) {
	t.Helper()
	var resp jobResponse
	httpResp := postInstance(t, url, body, &resp)
	return resp, httpResp.StatusCode
}

// pollJob GETs the job until it reaches a terminal state.
func pollJob(t *testing.T, baseURL, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var got jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			resp.Body.Close()
			t.Fatalf("decoding job: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job status %d", resp.StatusCode)
		}
		if got.Job.State.Terminal() {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never terminated (state %s)", id, got.Job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobSubmitPollResult is the core async flow: submit returns 202
// immediately, polling reaches done, and the response embeds a result
// document that parses back through ReadResult. An identical
// resubmission dedupes with a 200.
func TestJobSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	sub, status := submitJob(t, ts.URL+"/v1/jobs?k=3&oracle=greedy-mindeg&priority=high&label=quickstart", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if sub.Job.State != pslocal.JobQueued && sub.Job.State != pslocal.JobRunning && sub.Job.State != pslocal.JobDone {
		t.Fatalf("submitted job state = %q", sub.Job.State)
	}
	if len(sub.Job.ID) != 64 || sub.Job.Label != "quickstart" {
		t.Fatalf("submitted job = %+v", sub.Job)
	}

	final := pollJob(t, ts.URL, sub.Job.ID)
	if final.Job.State != pslocal.JobDone || final.Job.Error != "" {
		t.Fatalf("final job = %+v", final.Job)
	}
	if final.Job.N != 16 || final.Job.M != 8 || final.Job.TotalColors == 0 {
		t.Errorf("job summary = %+v", final.Job)
	}
	if len(final.Result) == 0 {
		t.Fatal("done job response carries no result document")
	}
	res, err := graphio.ReadResult(bytes.NewReader(final.Result))
	if err != nil {
		t.Fatalf("embedded result does not parse: %v", err)
	}
	if res.TotalColors != final.Job.TotalColors || len(res.Phases) != final.Job.PhaseCount {
		t.Errorf("embedded result %+v disagrees with summary %+v", res, final.Job)
	}

	resub, status := submitJob(t, ts.URL+"/v1/jobs?k=3&oracle=greedy-mindeg&priority=high&label=quickstart", body)
	if status != http.StatusOK || resub.Job.ID != sub.Job.ID || resub.Job.State != pslocal.JobDone {
		t.Errorf("resubmission = %d %+v, want 200 dedupe onto the done job", status, resub.Job)
	}
}

// TestJobSurvivesRestart is the acceptance criterion: a job completed
// under one server instance is visible — result included — from a new
// server instance over the same store directory.
func TestJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := config{maxWorkers: 2, maxInflight: 2, cacheEntries: 4, seed: 1, jobWorkers: 2, jobsDir: dir}
	s1, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	body := quickstartBody(t)
	sub, status := submitJob(t, ts1.URL+"/v1/jobs?k=3&oracle=greedy-mindeg", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	if got := pollJob(t, ts1.URL, sub.Job.ID); got.Job.State != pslocal.JobDone {
		t.Fatalf("job before restart = %+v", got.Job)
	}
	ts1.Close()
	s1.Close()

	s2, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	got := pollJob(t, ts2.URL, sub.Job.ID)
	if got.Job.State != pslocal.JobDone || !got.Job.Recovered {
		t.Fatalf("job after restart = %+v, want recovered done", got.Job)
	}
	res, err := graphio.ReadResult(bytes.NewReader(got.Result))
	if err != nil {
		t.Fatalf("recovered result does not parse: %v", err)
	}
	if res.TotalColors == 0 || len(res.Phases) == 0 {
		t.Errorf("recovered result degenerate: %+v", res)
	}
	// Resubmitting the identical request dedupes onto the stored job
	// instead of re-running it.
	resub, status := submitJob(t, ts2.URL+"/v1/jobs?k=3&oracle=greedy-mindeg", body)
	if status != http.StatusOK || resub.Job.ID != sub.Job.ID {
		t.Errorf("post-restart resubmission = %d %+v", status, resub.Job)
	}
}

func TestJobCancelRunning(t *testing.T) {
	oracle, name := registerBlockingJobOracle(t)
	_, ts := newTestServer(t)
	sub, status := submitJob(t, ts.URL+"/v1/jobs?oracle="+name, quickstartBody(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	select {
	case <-oracle.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	final := pollJob(t, ts.URL, sub.Job.ID)
	if final.Job.State != pslocal.JobCancelled {
		t.Fatalf("cancelled job = %+v", final.Job)
	}
	if len(final.Result) != 0 {
		t.Error("cancelled job carries a result document")
	}
}

func TestJobCancelUnknownIs404(t *testing.T) {
	_, ts := newTestServer(t)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/doesnotexist", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var got map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil || got["error"] == "" {
		t.Errorf("404 body not the JSON envelope: %v %v", got, err)
	}
}

// TestJobEventsSSE streams the lifecycle of a job: the event sequence
// must start at the subscription state and end with a terminal event,
// after which the server closes the stream.
func TestJobEventsSSE(t *testing.T) {
	oracle, name := registerBlockingJobOracle(t)
	_, ts := newTestServer(t)
	sub, status := submitJob(t, ts.URL+"/v1/jobs?oracle="+name, quickstartBody(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	select {
	case <-oracle.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Cancel mid-stream; the stream must deliver the cancelled event and
	// then end.
	go func() {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	var events []string
	var payloads []pslocal.JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, after)
		}
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			var ev pslocal.JobEvent
			if err := json.Unmarshal([]byte(after), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", after, err)
			}
			payloads = append(payloads, ev)
		}
	}
	if len(events) == 0 || events[len(events)-1] != string(pslocal.JobCancelled) {
		t.Fatalf("event sequence %v does not end in cancelled", events)
	}
	if events[0] != string(pslocal.JobRunning) {
		t.Errorf("first event %q, want the subscription-time state running", events[0])
	}
	last := payloads[len(payloads)-1]
	if last.ID != sub.Job.ID || !last.State.Terminal() {
		t.Errorf("last payload = %+v", last)
	}
}

func TestJobListFilters(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	done, status := submitJob(t, ts.URL+"/v1/jobs?k=3&label=good", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	failed, status := submitJob(t, ts.URL+"/v1/jobs?oracle=nonesuch&label=bad", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	pollJob(t, ts.URL, done.Job.ID)
	pollJob(t, ts.URL, failed.Job.ID)

	var list struct {
		Count int           `json:"count"`
		Jobs  []jobResponse `json:"jobs"`
	}
	get := func(query string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s status %d", query, resp.StatusCode)
		}
		list = struct {
			Count int           `json:"count"`
			Jobs  []jobResponse `json:"jobs"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
	}
	get("")
	if list.Count != 2 {
		t.Fatalf("unfiltered count = %d, want 2", list.Count)
	}
	get("?state=failed")
	if list.Count != 1 || list.Jobs[0].Job.ID != failed.Job.ID || list.Jobs[0].Job.Error == "" {
		t.Errorf("failed filter = %+v", list)
	}
	get("?label=good")
	if list.Count != 1 || list.Jobs[0].Job.ID != done.Job.ID {
		t.Errorf("label filter = %+v", list)
	}
	get("?limit=1")
	if list.Count != 1 {
		t.Errorf("limit filter count = %d", list.Count)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus state filter status = %d, want 400", resp.StatusCode)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	for _, tc := range []struct{ name, query string }{
		{"bad priority", "?priority=urgent"},
		{"bad deadline", "?deadline_ms=-5"},
		{"bad retries", "?max_retries=-1"},
		{"bad k", "?k=-2"},
		{"bad format", "?format=xml"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var got map[string]any
			resp := postInstance(t, ts.URL+"/v1/jobs"+tc.query, body, &got)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%v)", resp.StatusCode, got)
			}
		})
	}
	// An empty body is rejected at submit, not at run.
	var got map[string]any
	if resp := postInstance(t, ts.URL+"/v1/jobs", nil, &got); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d, want 400", resp.StatusCode)
	}
}

func TestJobQueueFullReturns503(t *testing.T) {
	oracle, name := registerBlockingJobOracle(t)
	_, ts := newTestServerConfig(t, config{
		maxWorkers: 2, maxInflight: 4, cacheEntries: 4, seed: 1,
		jobWorkers: 1, jobQueueCap: 1,
	})
	body := quickstartBody(t)
	blocker, status := submitJob(t, ts.URL+"/v1/jobs?oracle="+name, body)
	if status != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", status)
	}
	select {
	case <-oracle.started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocker never started")
	}
	if _, status := submitJob(t, ts.URL+"/v1/jobs?k=2", body); status != http.StatusAccepted {
		t.Fatalf("filler submit status %d", status)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs?k=4", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After hint")
	}
	// Unblock by cancelling the blocker.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.Job.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

func TestStatzMergesJobCounters(t *testing.T) {
	_, ts := newTestServer(t)
	sub, status := submitJob(t, ts.URL+"/v1/jobs?k=3", quickstartBody(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	pollJob(t, ts.URL, sub.Job.ID)
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statzResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Submitted != 1 || stats.Jobs.Completed != 1 || stats.Jobs.Workers != 2 {
		t.Errorf("statz jobs = %+v, want 1 submitted, 1 completed, 2 workers", stats.Jobs)
	}
	if stats.Jobs.QueueDepth != 0 || stats.Jobs.Running != 0 {
		t.Errorf("statz job gauges = %+v, want quiescent", stats.Jobs)
	}
}

// TestNotFoundAndMethodNotAllowedAreJSON is the satellite regression:
// routes the mux cannot match must answer with the service's JSON error
// envelope, not net/http's plain text.
func TestNotFoundAndMethodNotAllowedAreJSON(t *testing.T) {
	s, ts := newTestServer(t)
	failuresBefore := s.met.failures.Value()
	for _, tc := range []struct {
		name, method, path string
		wantStatus         int
	}{
		{"unknown path", http.MethodGet, "/nope", http.StatusNotFound},
		{"wrong method on reduce", http.MethodGet, "/v1/reduce", http.StatusMethodNotAllowed},
		{"wrong method on healthz", http.MethodPost, "/healthz", http.StatusMethodNotAllowed},
		{"wrong method on jobs id", http.MethodPut, "/v1/jobs/abc", http.StatusMethodNotAllowed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(""))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("content type = %q, want application/json", ct)
			}
			var got map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatalf("body is not JSON: %v", err)
			}
			if got["error"] == "" {
				t.Error("envelope carries no error message")
			}
			if tc.wantStatus == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
				t.Error("405 lost its Allow header")
			}
		})
	}
	if got := s.met.failures.Value(); got != failuresBefore+4 {
		t.Errorf("failures counter advanced by %d, want 4", got-failuresBefore)
	}
}

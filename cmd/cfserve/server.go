package main

// server.go implements the HTTP surface of the reduction service. Two
// POST endpoints expose the pipeline — /v1/reduce runs the Theorem 1.1
// reduction on a hypergraph, /v1/maxis solves MaxIS on a graph — with
// the instance format, oracle selection, worker count and seed chosen
// per request through query parameters. Request bodies are any
// internal/graphio format (sniffed by default); every response verifies
// its own output through internal/verify before reporting verified=true.
// Admission is bounded by an engine.Gate so a burst of requests queues
// instead of oversubscribing the worker pools, and parsed instances are
// cached by content hash (cache.go).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pslocal/internal/core"
	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
	"pslocal/internal/slocal"
	"pslocal/internal/verify"
)

// config carries the server-wide limits set by the flags in main.go.
type config struct {
	// maxWorkers caps the per-request worker count; < 1 selects GOMAXPROCS.
	maxWorkers int
	// maxInflight bounds concurrently running solves; < 1 selects GOMAXPROCS.
	maxInflight int
	// cacheEntries bounds the parsed-instance LRU.
	cacheEntries int
	// maxBodyBytes caps request bodies; <= 0 selects 64 MiB.
	maxBodyBytes int64
	// seed is the default oracle seed when a request carries none.
	seed int64
}

// server is the HTTP handler plus its shared state.
type server struct {
	cfg   config
	cache *instanceCache
	gate  *engine.Gate
	mux   *http.ServeMux
	start time.Time

	requests atomic.Uint64 // all requests, any endpoint
	reduces  atomic.Uint64 // successful /v1/reduce responses
	solves   atomic.Uint64 // successful /v1/maxis responses
	failures atomic.Uint64 // 4xx/5xx responses
	canceled atomic.Uint64 // requests abandoned by the client mid-solve
}

// newServer wires the routes and resolves config defaults.
func newServer(cfg config) *server {
	if cfg.maxWorkers < 1 {
		cfg.maxWorkers = engine.Parallel().WorkerCount()
	}
	if cfg.cacheEntries < 1 {
		cfg.cacheEntries = 128
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	s := &server{
		cfg:   cfg,
		cache: newInstanceCache(cfg.cacheEntries),
		gate:  engine.NewGate(cfg.maxInflight),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/reduce", s.handleReduce)
	s.mux.HandleFunc("POST /v1/maxis", s.handleMaxIS)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// instanceInfo describes the parsed instance and its cache disposition in
// every response.
type instanceInfo struct {
	Kind  string `json:"kind"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Cache string `json:"cache"` // "hit" or "miss"
	Key   string `json:"key"`   // "sha256:" + first 16 hex digits
}

// reduceResponse is the /v1/reduce response body. Result is the
// graphio reduction-result document, so CLI -out files and service
// responses share one schema.
type reduceResponse struct {
	Instance  instanceInfo    `json:"instance"`
	Oracle    string          `json:"oracle"`
	Workers   int             `json:"workers"`
	Verified  bool            `json:"verified"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Result    json.RawMessage `json:"result"`
}

// handleReduce runs the Theorem 1.1 reduction on the posted hypergraph.
func (s *server) handleReduce(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	format, err := graphio.ParseFormat(q.Get("format"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	k, err := intParam(q.Get("k"), 3)
	if err != nil || k < 1 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad k parameter %q (want a positive integer)", q.Get("k")))
		return
	}
	workers, err := intParam(q.Get("workers"), 1)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q.Get("workers")))
		return
	}
	workers = s.clampWorkers(workers)
	seed, err := int64Param(q.Get("seed"), s.cfg.seed)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad seed parameter %q", q.Get("seed")))
		return
	}
	oracleName := q.Get("oracle")
	if oracleName == "" {
		oracleName = "implicit"
	}
	opts := core.Options{K: k}
	switch oracleName {
	case "exact":
		opts.Mode = core.ModeExactHinted
	case "implicit":
		opts.Mode = core.ModeImplicitFirstFit
	default:
		oracle, err := maxis.Lookup(oracleName, seed)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		opts.Mode = core.ModeOracle
		opts.Oracle = oracle
	}

	// Admission happens before the body is even read: parsing and CSR
	// construction are exactly the costs the gate exists to bound.
	if err := s.gate.Acquire(r.Context()); err != nil {
		s.abandon(err)
		return
	}
	defer s.gate.Release()

	body, status, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, status, err)
		return
	}
	key := cacheKey("hypergraph", format.String(), body)
	info := instanceInfo{Kind: "hypergraph", Cache: "hit", Key: "sha256:" + key[:16]}
	cached, ok := s.cache.get(key)
	var h *hypergraph.Hypergraph
	if ok {
		h = cached.(*hypergraph.Hypergraph)
	} else {
		info.Cache = "miss"
		h, err = graphio.ReadHypergraph(bytes.NewReader(body), format)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		s.cache.put(key, h)
	}
	info.N, info.M = h.N(), h.M()

	started := time.Now()
	opts.Engine = engine.Options{Workers: workers, Ctx: r.Context()}
	res, err := core.Reduce(h, opts)
	if err != nil {
		if isCancellation(err) {
			s.abandon(err)
			return
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	verified := verify.ReductionResult(h, res) == nil &&
		verify.ConflictFreeMulti(h, res.Multicoloring) == nil

	var doc bytes.Buffer
	if err := graphio.WriteResult(&doc, res); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.reduces.Add(1)
	s.writeJSON(w, http.StatusOK, reduceResponse{
		Instance:  info,
		Oracle:    oracleName,
		Workers:   workers,
		Verified:  verified,
		ElapsedMS: msSince(started),
		Result:    json.RawMessage(doc.Bytes()),
	})
}

// maxisResponse is the /v1/maxis response body. Locality is present only
// for algorithm=carving.
type maxisResponse struct {
	Instance       instanceInfo `json:"instance"`
	Algorithm      string       `json:"algorithm"`
	Oracle         string       `json:"oracle,omitempty"`
	Workers        int          `json:"workers"`
	Size           int          `json:"size"`
	IndependentSet []int32      `json:"independent_set"`
	Verified       bool         `json:"verified"`
	Locality       int          `json:"locality,omitempty"`
	RadiusBound    int          `json:"radius_bound,omitempty"`
	ElapsedMS      float64      `json:"elapsed_ms"`
}

// handleMaxIS solves MaxIS on the posted graph, either through a registry
// oracle (algorithm=oracle, the default) or the SLOCAL ball-carving
// (1+δ)-approximation (algorithm=carving, which reports its locality).
func (s *server) handleMaxIS(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	format, err := graphio.ParseFormat(q.Get("format"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	workers, err := intParam(q.Get("workers"), 1)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q.Get("workers")))
		return
	}
	workers = s.clampWorkers(workers)
	seed, err := int64Param(q.Get("seed"), s.cfg.seed)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad seed parameter %q", q.Get("seed")))
		return
	}
	algorithm := q.Get("algorithm")
	if algorithm == "" {
		algorithm = "oracle"
	}
	var (
		oracleName string
		oracle     maxis.Oracle
		delta      float64
	)
	switch algorithm {
	case "oracle":
		oracleName = q.Get("oracle")
		if oracleName == "" {
			oracleName = "greedy-mindeg"
		}
		oracle, err = maxis.Lookup(oracleName, seed)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	case "carving":
		delta, err = floatParam(q.Get("delta"), 1.0)
		if err != nil || delta <= 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad delta parameter %q (want a positive float)", q.Get("delta")))
			return
		}
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q (want oracle|carving)", algorithm))
		return
	}

	// As in handleReduce, admission precedes the body read so parsing is
	// bounded too.
	if err := s.gate.Acquire(r.Context()); err != nil {
		s.abandon(err)
		return
	}
	defer s.gate.Release()

	body, status, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, status, err)
		return
	}
	key := cacheKey("graph", format.String(), body)
	info := instanceInfo{Kind: "graph", Cache: "hit", Key: "sha256:" + key[:16]}
	cached, ok := s.cache.get(key)
	var g *graph.Graph
	if ok {
		g = cached.(*graph.Graph)
	} else {
		info.Cache = "miss"
		g, err = graphio.ReadGraph(bytes.NewReader(body), format)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		s.cache.put(key, g)
	}
	info.N, info.M = g.N(), g.M()

	started := time.Now()
	resp := maxisResponse{Instance: info, Algorithm: algorithm, Oracle: oracleName, Workers: workers}
	var set []int32
	switch algorithm {
	case "oracle":
		if es, ok := oracle.(maxis.EngineSetter); ok {
			es.SetEngine(engine.Options{Workers: workers, Ctx: r.Context()})
		}
		set, err = oracle.Solve(g)
	case "carving":
		var res *slocal.CarvingResult
		res, err = slocal.BallCarvingMaxIS(g, slocal.CarvingOptions{
			Delta: delta,
			Inner: carvingInner(r.Context()),
		})
		if err == nil {
			set = res.Set
			resp.Locality = res.Locality
			resp.RadiusBound = res.RadiusBound
		}
	}
	if err != nil {
		if isCancellation(err) {
			s.abandon(err)
			return
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	resp.Size = len(set)
	resp.IndependentSet = set
	resp.Verified = verify.IndependentSet(g, set) == nil
	resp.ElapsedMS = msSince(started)
	s.solves.Add(1)
	s.writeJSON(w, http.StatusOK, resp)
}

// carvingBranchBudget bounds the exact solve inside each carved ball. A
// dense request would otherwise pin its gate slot on an unbounded
// branch-and-bound with no cancellation path; when the budget trips, the
// solver's anytime set is used instead — the output is still a verified
// independent set, only the (1+δ) quality bound degrades.
const carvingBranchBudget = 1 << 20

// carvingInner returns the per-ball MaxIS solver for server-side ball
// carving: budget-bounded, and checking the request context between
// balls so an abandoned request stops at the next carve.
func carvingInner(ctx context.Context) slocal.InnerSolver {
	return func(g *graph.Graph) ([]int32, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		set, err := maxis.ExactOpts(g, maxis.ExactOptions{MaxBranchNodes: carvingBranchBudget})
		if errors.Is(err, maxis.ErrBudgetExceeded) {
			return set, nil
		}
		return set, err
	}
}

// handleHealthz reports liveness.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// statzResponse is the /statz metrics snapshot.
type statzResponse struct {
	UptimeS     float64    `json:"uptime_s"`
	Requests    uint64     `json:"requests"`
	Reduces     uint64     `json:"reduces"`
	Solves      uint64     `json:"solves"`
	Failures    uint64     `json:"failures"`
	Canceled    uint64     `json:"canceled"`
	Inflight    int        `json:"inflight"`
	MaxInflight int        `json:"max_inflight"`
	MaxWorkers  int        `json:"max_workers"`
	Cache       cacheStats `json:"cache"`
}

// handleStatz reports the service counters and cache statistics.
func (s *server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, statzResponse{
		UptimeS:     time.Since(s.start).Seconds(),
		Requests:    s.requests.Load(),
		Reduces:     s.reduces.Load(),
		Solves:      s.solves.Load(),
		Failures:    s.failures.Load(),
		Canceled:    s.canceled.Load(),
		Inflight:    s.gate.InUse(),
		MaxInflight: s.gate.Capacity(),
		MaxWorkers:  s.cfg.maxWorkers,
		Cache:       s.cache.snapshot(),
	})
}

// readBody drains the request body under the configured size cap,
// returning the HTTP status a failure should map to (413 for an
// over-limit body, 400 otherwise).
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("reading request body: %w", err)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err)
	}
	if len(body) == 0 {
		return nil, http.StatusBadRequest, errors.New("empty request body: POST the instance in a graphio format")
	}
	return body, http.StatusBadRequest, nil
}

// clampWorkers maps the request's workers parameter onto [1, maxWorkers]:
// 0 or negative ask for "as many as allowed" (the server cap).
func (s *server) clampWorkers(workers int) int {
	if workers < 1 || workers > s.cfg.maxWorkers {
		return s.cfg.maxWorkers
	}
	return workers
}

// fail writes a JSON error response and counts the failure.
func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.failures.Add(1)
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// abandon records a request whose client went away mid-solve; nothing is
// written because nobody is listening.
func (s *server) abandon(error) {
	s.canceled.Add(1)
}

// writeJSON writes v with the given status.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// isCancellation reports whether err stems from the request context.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// intParam parses an optional integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// int64Param parses an optional int64 query parameter.
func int64Param(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// floatParam parses an optional float query parameter.
func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

// msSince returns the elapsed milliseconds since t.
func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000.0
}

package main

// server.go implements the HTTP surface of the reduction service. Two
// POST endpoints expose the pipeline synchronously — /v1/reduce runs the
// Theorem 1.1 reduction on a hypergraph, /v1/maxis solves MaxIS on a
// graph — with the instance format, oracle selection, worker count and
// seed chosen per request through query parameters; the asynchronous
// /v1/jobs endpoints (jobs.go) run the same reductions through the job
// subsystem's queue instead of holding the connection open.
//
// Both endpoints are served through one shared pslocal.Solver: the server
// owns no cache or gate of its own. The base Solver (built in newServer)
// carries the server-wide limits — the parsed-instance cache and the
// bounded admission gate — and each request derives a per-call variant
// with Solver.With for its oracle, palette, seed and worker choices; the
// derived solvers share the base cache and gate. Solver errors map onto
// HTTP statuses via errors.Is over the pslocal error taxonomy, and every
// response verifies its own output through the facade verifiers before
// reporting verified=true.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pslocal"
)

// encodeBuf is one pooled response encoder: a reusable buffer with a
// json.Encoder permanently bound to it, so steady-state responses reuse
// both the encode buffer and the encoder instead of allocating fresh ones
// per request. Buffers that ballooned past maxRetainedEncodeBuf on a
// one-off giant response are dropped instead of pooled.
type encodeBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

const maxRetainedEncodeBuf = 1 << 20

var encodePool = sync.Pool{New: func() any {
	e := new(encodeBuf)
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

func grabEncodeBuf() *encodeBuf {
	e := encodePool.Get().(*encodeBuf)
	e.buf.Reset()
	return e
}

func releaseEncodeBuf(e *encodeBuf) {
	if e.buf.Cap() <= maxRetainedEncodeBuf {
		encodePool.Put(e)
	}
}

// config carries the server-wide limits set by the flags in main.go.
type config struct {
	// maxWorkers caps the per-request worker count; < 1 selects GOMAXPROCS.
	maxWorkers int
	// maxInflight bounds concurrently running solves; < 1 selects GOMAXPROCS.
	maxInflight int
	// cacheEntries bounds the parsed-instance LRU.
	cacheEntries int
	// maxBodyBytes caps request bodies; <= 0 selects 64 MiB.
	maxBodyBytes int64
	// seed is the default oracle seed when a request carries none.
	seed int64
	// jobsDir is the persistent job store directory ("" = memory only).
	jobsDir string
	// jobWorkers is the job pool width; < 1 selects GOMAXPROCS.
	jobWorkers int
	// jobQueueCap bounds the job queue across lanes; < 1 selects 1024.
	jobQueueCap int
	// slow is the slow-request log threshold; 0 disables slow logging.
	slow time.Duration
	// traceRing bounds the retained trace snapshots; < 1 selects 128.
	traceRing int
	// logger receives structured request logs; nil selects slog.Default.
	logger *slog.Logger
}

// server is the HTTP handler plus its shared state.
type server struct {
	cfg    config
	solver *pslocal.Solver     // owns the instance cache and admission gate
	jobs   *pslocal.JobManager // owns the job queue, pool and store
	mux    *http.ServeMux
	start  time.Time

	// draining flips once (POST /drainz or SIGTERM) and never back:
	// /readyz answers 503 so load balancers stop sending, new solve and
	// job submissions are refused with 503 + Retry-After, and running
	// work finishes. Liveness (/healthz) stays 200 throughout — the
	// process is healthy, just leaving the pool.
	draining atomic.Bool

	// lastReadyProbe is the unix-nano time of the last /readyz request.
	// The SIGTERM path uses it to decide whether a load balancer is
	// routing on this node's readiness and deserves time to observe the
	// drain before the listener closes.
	lastReadyProbe atomic.Int64
	// drainEjected closes once drainEjectQuorum readiness probes have
	// answered 503 — by then cfgate's default prober has ejected the
	// node, so closing the listener no longer turns freshly routed
	// requests into connection-refused errors.
	drainEjected     chan struct{}
	drainEjectedOnce sync.Once
	drainProbes      atomic.Int64

	// met is the metrics surface shared by GET /metrics and /statz;
	// traces is the ring GET /v1/traces serves (job runs push into the
	// same ring through the manager).
	met    *serverMetrics
	traces *pslocal.TraceRing
	logger *slog.Logger
}

// newServer wires the routes, resolves config defaults, and builds the
// shared Solver plus the job manager driving it. The error is the job
// store directory failing to materialize.
func newServer(cfg config) (*server, error) {
	if cfg.maxWorkers < 1 {
		cfg.maxWorkers = pslocal.ParallelEngine().WorkerCount()
	}
	if cfg.maxInflight < 1 {
		cfg.maxInflight = -1 // Solver convention: negative = GOMAXPROCS
	}
	if cfg.cacheEntries < 1 {
		cfg.cacheEntries = 128
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	if cfg.logger == nil {
		cfg.logger = slog.Default()
	}
	s := &server{
		cfg:          cfg,
		drainEjected: make(chan struct{}),
		solver: pslocal.NewSolver(
			pslocal.WithCache(cfg.cacheEntries),
			pslocal.WithMaxInflight(cfg.maxInflight),
			pslocal.WithSeed(cfg.seed),
		),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		traces: pslocal.NewTraceRing(cfg.traceRing),
		logger: cfg.logger,
	}
	jm, err := pslocal.NewJobManager(pslocal.JobConfig{
		Solver:   s.solver, // jobs share the instance cache and admission gate
		Dir:      cfg.jobsDir,
		Workers:  cfg.jobWorkers,
		QueueCap: cfg.jobQueueCap,
		Traces:   s.traces, // job runs publish into the same trace ring
	})
	if err != nil {
		return nil, err
	}
	s.jobs = jm
	s.met = newServerMetrics(s.solver, s.jobs)
	s.mux.HandleFunc("POST /v1/reduce", s.handleReduce)
	s.mux.HandleFunc("POST /v1/maxis", s.handleMaxIS)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /drainz", s.handleDrainz)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	s.mux.Handle("GET /metrics", s.met.reg.Handler())
	return s, nil
}

// readyProbedWithin reports whether /readyz was hit within d — the
// SIGTERM path's signal that a gateway is routing on this node's
// readiness. A node nobody probes has no router to inform and shuts
// down without waiting.
func (s *server) readyProbedWithin(d time.Duration) bool {
	last := s.lastReadyProbe.Load()
	return last != 0 && time.Since(time.Unix(0, last)) <= d
}

// Drain flips the server into draining (idempotently) and waits for
// running and queued jobs to finish or ctx to expire. The SIGTERM path
// in main.go calls it after http.Server.Shutdown has flushed in-flight
// requests.
func (s *server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.jobs.Drain(ctx)
}

// Close stops the job manager (queued jobs cancel, running jobs unwind
// cooperatively).
func (s *server) Close() {
	s.jobs.Close()
}

// ServeHTTP implements http.Handler. Every request gets a request id —
// a valid caller-supplied X-Pslocal-Request-Id survives (cfgate mints
// one when the client had none), anything else is replaced — echoed on
// the response and readable by handlers from r.Header. Requests no
// route matches — 404s and wrong-method 405s — go through a rewriting
// writer that turns the mux's plain-text error into the same JSON
// envelope every other error response uses.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Inc()
	rid := pslocal.EnsureRequestID(r.Header.Get(pslocal.RequestIDHeader))
	r.Header.Set(pslocal.RequestIDHeader, rid)
	w.Header().Set(pslocal.RequestIDHeader, rid)
	if _, pattern := s.mux.Handler(r); pattern == "" {
		s.met.failures.Inc()
		s.mux.ServeHTTP(&jsonErrorRewriter{w: w}, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// jsonErrorRewriter wraps a ResponseWriter so the ServeMux's built-in
// plain-text 404/405 bodies come out as the service's JSON error
// envelope, preserving the status and the 405's Allow header.
type jsonErrorRewriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (j *jsonErrorRewriter) Header() http.Header { return j.w.Header() }

func (j *jsonErrorRewriter) WriteHeader(status int) {
	j.w.Header().Set("Content-Type", "application/json")
	j.w.WriteHeader(status)
}

func (j *jsonErrorRewriter) Write(p []byte) (int, error) {
	if !j.wrote {
		j.wrote = true
		body, err := json.Marshal(map[string]string{"error": strings.TrimSpace(string(p))})
		if err != nil {
			return 0, err
		}
		if _, err := j.w.Write(append(body, '\n')); err != nil {
			return 0, err
		}
	}
	// Report the caller's bytes as consumed either way: the envelope
	// replaces the text body rather than appending to it.
	return len(p), nil
}

// instanceInfo describes the parsed instance and its cache disposition in
// every response.
type instanceInfo struct {
	Kind     string `json:"kind"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	Weighted bool   `json:"weighted,omitempty"`
	Cache    string `json:"cache"` // "hit" or "miss"
	Key      string `json:"key"`   // "sha256:" + first 16 hex digits
}

// describe maps the Solver's instance report onto the response schema.
func describe(inst *pslocal.InstanceInfo) instanceInfo {
	info := instanceInfo{
		Kind:     inst.Kind,
		N:        inst.N,
		M:        inst.M,
		Weighted: inst.Weighted(),
		Cache:    "miss",
	}
	// The key is empty only when the Solver runs cacheless, which this
	// server never configures — but do not let a future config change
	// panic the response path.
	if len(inst.Key) >= 16 {
		info.Key = "sha256:" + inst.Key[:16]
	}
	if inst.CacheHit {
		info.Cache = "hit"
	}
	return info
}

// reduceResponse is the /v1/reduce response body. Result is the
// graphio reduction-result document, so CLI -out files and service
// responses share one schema.
type reduceResponse struct {
	Instance  instanceInfo    `json:"instance"`
	Oracle    string          `json:"oracle"`
	Workers   int             `json:"workers"`
	Verified  bool            `json:"verified"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Result    json.RawMessage `json:"result"`
	// Trace is the per-phase span tree, embedded when the request asked
	// for it with ?trace=1.
	Trace *pslocal.TraceSnapshot `json:"trace,omitempty"`
}

// refuseDraining rejects new work on a draining server with 503 and a
// retry hint, reporting whether the request was refused. Reads (job
// status, lists, events, statz) stay open so operators and the gateway
// can watch the drain finish.
func (s *server) refuseDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	s.fail(w, http.StatusServiceUnavailable, errors.New("server draining"))
	return true
}

// handleReduce runs the Theorem 1.1 reduction on the posted hypergraph.
func (s *server) handleReduce(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	q := r.URL.Query()
	format, err := pslocal.ParseGraphFormat(q.Get("format"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	k, err := intParam(q.Get("k"), 3)
	if err != nil || k < 1 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad k parameter %q (want a positive integer)", q.Get("k")))
		return
	}
	workers, err := intParam(q.Get("workers"), 1)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q.Get("workers")))
		return
	}
	workers = s.clampWorkers(workers)
	seed, err := int64Param(q.Get("seed"), s.cfg.seed)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad seed parameter %q", q.Get("seed")))
		return
	}
	oracleName := q.Get("oracle")
	if oracleName == "" {
		oracleName = "implicit"
	}

	sv := s.solver.With(
		pslocal.WithK(k),
		pslocal.WithWorkers(workers),
		pslocal.WithSeed(seed),
		pslocal.WithOracle(oracleName),
	)
	started := time.Now()
	// Every solve runs under a pooled trace: the snapshot lands in the
	// /v1/traces ring whether the solve succeeds or fails, and ?trace=1
	// embeds it in the response.
	tr := grabTrace("reduce", r.Header.Get(pslocal.RequestIDHeader))
	ctx := pslocal.ContextWithTrace(r.Context(), tr)
	// Admission (the shared gate) happens inside SolveReaderKeyed before
	// the body is even read: parsing and CSR construction are exactly
	// the costs the gate exists to bound. A gateway-supplied instance
	// key (X-Pslocal-Instance-Key) skips re-hashing the body; requests
	// without one hash as before.
	res, inst, err := sv.SolveReaderKeyed(ctx,
		http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes), format,
		r.Header.Get(pslocal.HeaderInstanceKey))
	if err != nil {
		s.finishTrace(tr)
		s.failSolve(w, err)
		return
	}
	verified := false
	if hg := inst.Hypergraph(); hg != nil {
		verified = pslocal.VerifyReduction(hg, res) == nil &&
			pslocal.VerifyConflictFreeMulti(hg, res.Multicoloring) == nil
	}

	// The result document lands in a pooled buffer too; the RawMessage
	// below aliases it, so it is released only after writeJSON has
	// serialised the response (the deferred release runs last).
	docBuf := grabEncodeBuf()
	defer releaseEncodeBuf(docBuf)
	if err := pslocal.WriteResult(&docBuf.buf, res); err != nil {
		s.finishTrace(tr)
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	snap := s.finishTrace(tr)
	elapsed := time.Since(started)
	s.met.reduces.Inc()
	s.met.observeSolve(s.met.reduce, elapsed, inst.CacheHit)
	s.logSlow(r, "reduce", elapsed)
	resp := reduceResponse{
		Instance:  describe(inst),
		Oracle:    oracleName,
		Workers:   workers,
		Verified:  verified,
		ElapsedMS: msSince(started),
		Result:    json.RawMessage(docBuf.buf.Bytes()),
	}
	if wantTrace(q.Get("trace")) {
		resp.Trace = snap
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// wantTrace interprets the ?trace= query parameter.
func wantTrace(v string) bool { return v == "1" || v == "true" }

// logSlow emits a structured warning for requests at or above the
// -slow-ms threshold (0 disables).
func (s *server) logSlow(r *http.Request, endpoint string, d time.Duration) {
	if s.cfg.slow <= 0 || d < s.cfg.slow {
		return
	}
	s.logger.Warn("slow request",
		"endpoint", endpoint,
		"dur_ms", float64(d.Microseconds())/1000,
		"request_id", r.Header.Get(pslocal.RequestIDHeader))
}

// maxisResponse is the /v1/maxis response body. Locality is present only
// for algorithm=carving.
type maxisResponse struct {
	Instance       instanceInfo `json:"instance"`
	Algorithm      string       `json:"algorithm"`
	Oracle         string       `json:"oracle,omitempty"`
	Workers        int          `json:"workers"`
	Size           int          `json:"size"`
	TotalWeight    int64        `json:"total_weight"`
	IndependentSet []int32      `json:"independent_set"`
	Verified       bool         `json:"verified"`
	Locality       int          `json:"locality,omitempty"`
	RadiusBound    int          `json:"radius_bound,omitempty"`
	ElapsedMS      float64      `json:"elapsed_ms"`
	// Trace is the per-phase span tree, embedded when the request asked
	// for it with ?trace=1.
	Trace *pslocal.TraceSnapshot `json:"trace,omitempty"`
}

// handleMaxIS solves MaxIS on the posted graph, either through a registry
// oracle (algorithm=oracle, the default) or the SLOCAL ball-carving
// (1+δ)-approximation (algorithm=carving, which reports its locality).
func (s *server) handleMaxIS(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	q := r.URL.Query()
	format, err := pslocal.ParseGraphFormat(q.Get("format"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	workers, err := intParam(q.Get("workers"), 1)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q.Get("workers")))
		return
	}
	workers = s.clampWorkers(workers)
	seed, err := int64Param(q.Get("seed"), s.cfg.seed)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad seed parameter %q", q.Get("seed")))
		return
	}
	algorithm := q.Get("algorithm")
	if algorithm == "" {
		algorithm = "oracle"
	}
	opts := []pslocal.SolverOption{
		pslocal.WithWorkers(workers),
		pslocal.WithSeed(seed),
	}
	oracleName := ""
	switch algorithm {
	case "oracle":
		oracleName = q.Get("oracle")
		if oracleName == "" {
			oracleName = "greedy-mindeg"
		}
		opts = append(opts, pslocal.WithOracle(oracleName))
	case "carving":
		delta, err := floatParam(q.Get("delta"), 1.0)
		if err != nil || delta <= 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad delta parameter %q (want a positive float)", q.Get("delta")))
			return
		}
		opts = append(opts, pslocal.WithCarving(delta))
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q (want oracle|carving)", algorithm))
		return
	}

	sv := s.solver.With(opts...)
	started := time.Now()
	tr := grabTrace("maxis", r.Header.Get(pslocal.RequestIDHeader))
	ctx := pslocal.ContextWithTrace(r.Context(), tr)
	res, inst, err := sv.MaxISReaderKeyed(ctx,
		http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes), format,
		r.Header.Get(pslocal.HeaderInstanceKey))
	if err != nil {
		s.finishTrace(tr)
		s.failSolve(w, err)
		return
	}
	snap := s.finishTrace(tr)
	elapsed := time.Since(started)
	resp := maxisResponse{
		Instance:       describe(inst),
		Algorithm:      algorithm,
		Oracle:         oracleName,
		Workers:        workers,
		Size:           len(res.Set),
		TotalWeight:    res.TotalWeight,
		IndependentSet: res.Set,
		Locality:       res.Locality,
		RadiusBound:    res.RadiusBound,
		ElapsedMS:      msSince(started),
	}
	if g := inst.Graph(); g != nil {
		resp.Verified = pslocal.VerifyIndependentSet(g, res.Set) == nil
	}
	if wantTrace(q.Get("trace")) {
		resp.Trace = snap
	}
	s.met.solves.Inc()
	s.met.observeSolve(s.met.maxis, elapsed, inst.CacheHit)
	s.logSlow(r, "maxis", elapsed)
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness: 200 as long as the process serves,
// draining or not. Orchestrators that restart on liveness failure must
// not kill a node for leaving the pool gracefully.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// drainEjectQuorum is how many 503 readiness probes the SIGTERM path
// waits for before closing the listener: cfgate's default FailAfter,
// the consecutive-failure count at which the prober ejects a backend.
const drainEjectQuorum = 3

// handleReadyz reports readiness: 503 while draining, 200 otherwise.
// cfgate probes this endpoint, so a draining node is ejected from
// routing within FailAfter probe intervals.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.lastReadyProbe.Store(time.Now().UnixNano())
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
			"jobs":   s.jobs.Stats(),
		})
		if s.drainProbes.Add(1) >= drainEjectQuorum {
			s.drainEjectedOnce.Do(func() { close(s.drainEjected) })
		}
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleDrainz starts a graceful drain: readiness flips to 503, new
// solve and job submissions are refused, and running plus queued jobs
// finish in the background. Idempotent — repeated calls report the
// current drain state. The process stays up (an operator or supervisor
// still owns its lifetime); SIGTERM runs the same drain and then exits.
func (s *server) handleDrainz(w http.ResponseWriter, _ *http.Request) {
	first := s.draining.CompareAndSwap(false, true)
	if first {
		// The waiter runs detached: /drainz answers immediately and the
		// caller polls /readyz or /statz for quiescence.
		go s.jobs.Drain(context.Background())
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"draining": true,
		"started":  first,
		"jobs":     s.jobs.Stats(),
	})
}

// statzResponse is the /statz metrics snapshot; Jobs merges in the job
// subsystem's counters (queue depth, running, outcomes, latency sums).
type statzResponse struct {
	UptimeS     float64                  `json:"uptime_s"`
	Ready       bool                     `json:"ready"`
	Draining    bool                     `json:"draining"`
	Requests    uint64                   `json:"requests"`
	Reduces     uint64                   `json:"reduces"`
	Solves      uint64                   `json:"solves"`
	Failures    uint64                   `json:"failures"`
	Canceled    uint64                   `json:"canceled"`
	Inflight    int                      `json:"inflight"`
	MaxInflight int                      `json:"max_inflight"`
	MaxWorkers  int                      `json:"max_workers"`
	Cache       pslocal.SolverCacheStats `json:"cache"`
	Jobs        pslocal.JobStats         `json:"jobs"`
	// Latency carries per-track response-latency histograms: reduce,
	// maxis, jobs_submit, and the solve samples split into cache_hit /
	// cache_miss (cold parse+CSR vs hot instance-cache path).
	Latency map[string]pslocal.MetricsHistSnapshot `json:"latency"`
}

// handleStatz reports the service counters, the Solver's cache and
// admission statistics, and the job subsystem's counters.
func (s *server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	draining := s.draining.Load()
	s.writeJSON(w, http.StatusOK, statzResponse{
		UptimeS:     time.Since(s.start).Seconds(),
		Ready:       !draining,
		Draining:    draining,
		Requests:    s.met.requests.Value(),
		Reduces:     s.met.reduces.Value(),
		Solves:      s.met.solves.Value(),
		Failures:    s.met.failures.Value(),
		Canceled:    s.met.canceled.Value(),
		Inflight:    s.solver.InFlight(),
		MaxInflight: s.solver.MaxInFlight(),
		MaxWorkers:  s.cfg.maxWorkers,
		Cache:       s.solver.CacheStats(),
		Jobs:        s.jobs.Stats(),
		Latency:     s.met.latencySnapshot(),
	})
}

// clampWorkers maps the request's workers parameter onto [1, maxWorkers]:
// 0 or negative ask for "as many as allowed" (the server cap).
func (s *server) clampWorkers(workers int) int {
	if workers < 1 || workers > s.cfg.maxWorkers {
		return s.cfg.maxWorkers
	}
	return workers
}

// failSolve maps a Solver error onto the response: abandoned requests are
// only counted (nobody is listening), the typed taxonomy maps onto 4xx
// via errors.Is, and everything else is a 500.
func (s *server) failSolve(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.Is(err, pslocal.ErrCancelled):
		s.abandon(err)
	case errors.As(err, &tooLarge):
		s.fail(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, pslocal.ErrUnknownOracle),
		errors.Is(err, pslocal.ErrReadInstance),
		errors.Is(err, pslocal.ErrMalformedInput),
		errors.Is(err, pslocal.ErrDuplicateEdge),
		errors.Is(err, pslocal.ErrUnsupportedFormat),
		errors.Is(err, pslocal.ErrUnknownFormat),
		errors.Is(err, pslocal.ErrBadK),
		errors.Is(err, pslocal.ErrBadDelta):
		s.fail(w, http.StatusBadRequest, err)
	case errors.Is(err, pslocal.ErrOracleInapplicable):
		// The instance parsed fine but lies outside the requested partial
		// oracle's class — the client's pairing, not a server fault.
		s.fail(w, http.StatusUnprocessableEntity, err)
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

// fail writes a JSON error response and counts the failure.
func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.met.failures.Inc()
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// abandon records a request whose client went away mid-solve; nothing is
// written because nobody is listening.
func (s *server) abandon(error) {
	s.met.canceled.Inc()
}

// writeJSON encodes v into a pooled buffer and writes it with the given
// status. Encoding before WriteHeader means an encode failure can still
// surface as a 500 instead of a truncated 200.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	e := grabEncodeBuf()
	defer releaseEncodeBuf(e)
	if err := e.enc.Encode(v); err != nil {
		s.met.failures.Inc()
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
}

// intParam parses an optional integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// int64Param parses an optional int64 query parameter.
func int64Param(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// floatParam parses an optional float query parameter.
func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

// msSince returns the elapsed milliseconds since t.
func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000.0
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/maxis"
)

// newTestServer returns a started httptest server over a fresh service
// instance with small, deterministic limits (in-memory job store).
func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerConfig(t, config{maxWorkers: 2, maxInflight: 2, cacheEntries: 4, seed: 1, jobWorkers: 2})
}

// newTestServerConfig is newTestServer with an explicit config (jobs
// persistence tests point jobsDir at a temp directory).
func newTestServerConfig(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// quickstartBody reads the instance the README curl example posts.
func quickstartBody(t *testing.T) []byte {
	t.Helper()
	body, err := os.ReadFile("testdata/quickstart.json")
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	return body
}

// postInstance POSTs body to url and decodes the JSON response into out.
func postInstance(t *testing.T, url string, body []byte, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp
}

// reduceDoc mirrors the graphio reduction-result schema for assertions.
type reduceDoc struct {
	Type        string `json:"type"`
	K           int    `json:"k"`
	TotalColors int    `json:"total_colors"`
	Phases      []struct {
		Phase       int `json:"phase"`
		EdgesBefore int `json:"edges_before"`
		ISSize      int `json:"is_size"`
	} `json:"phases"`
	Multicoloring [][]int32 `json:"multicoloring"`
}

// TestReduceColdThenCacheHit covers the acceptance criterion: a cold
// submission parses, reduces and verifies; resubmitting the identical
// body is a cache hit with the same verified result and phase statistics.
func TestReduceColdThenCacheHit(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	url := ts.URL + "/v1/reduce?k=3&oracle=greedy-mindeg&workers=2"

	for i, wantCache := range []string{"miss", "hit"} {
		var got struct {
			Instance instanceInfo `json:"instance"`
			Oracle   string       `json:"oracle"`
			Verified bool         `json:"verified"`
			Result   reduceDoc    `json:"result"`
		}
		resp := postInstance(t, url, body, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
		if got.Instance.Cache != wantCache {
			t.Errorf("submission %d: cache = %q, want %q", i, got.Instance.Cache, wantCache)
		}
		if !got.Verified {
			t.Errorf("submission %d: result not verified", i)
		}
		if got.Oracle != "greedy-mindeg" {
			t.Errorf("submission %d: oracle = %q", i, got.Oracle)
		}
		if len(got.Result.Phases) == 0 {
			t.Fatalf("submission %d: no phase statistics", i)
		}
		for _, ph := range got.Result.Phases {
			if ph.ISSize < 1 || ph.EdgesBefore < 1 {
				t.Errorf("submission %d: degenerate phase stat %+v", i, ph)
			}
		}
		if got.Instance.N != 16 || got.Instance.M != 8 {
			t.Errorf("submission %d: instance = %+v", i, got.Instance)
		}
		if len(got.Result.Multicoloring) != 16 {
			t.Errorf("submission %d: multicoloring over %d vertices, want 16", i, len(got.Result.Multicoloring))
		}
	}
}

// TestReduceOracleSelection exercises the per-request oracle choice,
// including a portfolio raced on the request's worker pool.
func TestReduceOracleSelection(t *testing.T) {
	_, ts := newTestServer(t)
	body := quickstartBody(t)
	for _, oracle := range []string{"implicit", "exact", "clique-removal", "portfolio:greedy-mindeg,greedy-random,clique-removal"} {
		var got struct {
			Oracle   string    `json:"oracle"`
			Verified bool      `json:"verified"`
			Result   reduceDoc `json:"result"`
		}
		url := fmt.Sprintf("%s/v1/reduce?k=3&workers=2&oracle=%s", ts.URL, oracle)
		resp := postInstance(t, url, body, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("oracle %s: status %d", oracle, resp.StatusCode)
		}
		if got.Oracle != oracle || !got.Verified {
			t.Errorf("oracle %s: echoed %q, verified %v", oracle, got.Oracle, got.Verified)
		}
	}
}

func TestReduceRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, url, body string
	}{
		{"unknown oracle", "/v1/reduce?oracle=nonesuch", `{"type":"hypergraph","n":2,"edges":[[0,1]]}`},
		{"bad k", "/v1/reduce?k=0", `{"type":"hypergraph","n":2,"edges":[[0,1]]}`},
		{"bad format", "/v1/reduce?format=xml", `{"type":"hypergraph","n":2,"edges":[[0,1]]}`},
		{"malformed body", "/v1/reduce", `{"type":"hypergraph","n":2,"edges":[[0,5]]}`},
		{"graph body on reduce", "/v1/reduce", `{"type":"graph","n":2,"edges":[[0,1]]}`},
		{"empty body", "/v1/reduce", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got map[string]any
			resp := postInstance(t, ts.URL+tc.url, []byte(tc.body), &got)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%v)", resp.StatusCode, got)
			}
			if got["error"] == "" {
				t.Error("400 response carries no error message")
			}
		})
	}
}

// TestMaxISInapplicableOracleIs422 pins the status for a partial oracle
// declining an instance outside its class: the body parsed fine, so it
// is neither a 400 nor a server fault.
func TestMaxISInapplicableOracleIs422(t *testing.T) {
	_, ts := newTestServer(t)
	triangle := []byte(`{"type":"graph","n":3,"edges":[[0,1],[1,2],[0,2]]}`)
	var got map[string]any
	resp := postInstance(t, ts.URL+"/v1/maxis?oracle=bipartite-exact", triangle, &got)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (%v)", resp.StatusCode, got)
	}
	if got["error"] == "" {
		t.Error("422 response carries no error message")
	}
	// Inside a portfolio the same instance succeeds: the member drops.
	var ok maxisResponse
	resp = postInstance(t, ts.URL+"/v1/maxis?oracle=portfolio:bipartite-exact,greedy-mindeg", triangle, &ok)
	if resp.StatusCode != http.StatusOK || !ok.Verified {
		t.Fatalf("portfolio with inapplicable member: status %d, verified %v", resp.StatusCode, ok.Verified)
	}
}

// TestMaxISAllFormats posts the same graph in every supported format,
// with and without an explicit format directive.
func TestMaxISAllFormats(t *testing.T) {
	_, ts := newTestServer(t)
	g := graph.Grid(4, 5)
	for _, f := range []graphio.Format{graphio.FormatEdgeList, graphio.FormatDIMACS, graphio.FormatJSON} {
		var buf bytes.Buffer
		if err := graphio.WriteGraph(&buf, g, f); err != nil {
			t.Fatal(err)
		}
		for _, directive := range []string{"", "&format=" + f.String()} {
			var got maxisResponse
			url := ts.URL + "/v1/maxis?oracle=greedy-mindeg" + directive
			resp := postInstance(t, url, buf.Bytes(), &got)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%v%s: status %d", f, directive, resp.StatusCode)
			}
			if !got.Verified || got.Size == 0 || len(got.IndependentSet) != got.Size {
				t.Errorf("%v%s: response %+v", f, directive, got)
			}
			// A 4x5 grid's maximum independent set has 10 nodes; greedy
			// min-degree finds it.
			if got.Size != 10 {
				t.Errorf("%v%s: size = %d, want 10", f, directive, got.Size)
			}
		}
	}
}

func TestMaxISCarvingReportsLocality(t *testing.T) {
	_, ts := newTestServer(t)
	var buf bytes.Buffer
	if err := graphio.WriteGraph(&buf, graph.Cycle(24), graphio.FormatJSON); err != nil {
		t.Fatal(err)
	}
	var got maxisResponse
	resp := postInstance(t, ts.URL+"/v1/maxis?algorithm=carving&delta=1.0", buf.Bytes(), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !got.Verified || got.Size == 0 {
		t.Fatalf("carving response %+v", got)
	}
	if got.Locality < 1 || got.RadiusBound < got.Locality {
		t.Errorf("locality %d outside [1, bound %d]", got.Locality, got.RadiusBound)
	}
}

// blockOracle blocks Solve until the engine context is cancelled, letting
// the cancellation test hold a reduction mid-phase deterministically.
type blockOracle struct {
	mu      sync.Mutex
	eng     engine.Options
	started chan struct{}
}

func (o *blockOracle) Name() string { return "test-block" }

func (o *blockOracle) SetEngine(e engine.Options) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.eng = e
}

func (o *blockOracle) Solve(*graph.Graph) ([]int32, error) {
	o.mu.Lock()
	ctx := o.eng.Context()
	o.mu.Unlock()
	select {
	case o.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

var registerBlockOracle sync.Once

// TestCancellationMidReduction aborts a request while its phase solve is
// running and checks the server records the abandonment instead of
// counting a success or failure.
func TestCancellationMidReduction(t *testing.T) {
	s, ts := newTestServer(t)
	oracle := &blockOracle{started: make(chan struct{}, 1)}
	registerBlockOracle.Do(func() {
		maxis.MustRegister("test-block", func(int64) maxis.Oracle { return oracle })
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/reduce?oracle=test-block&workers=2", bytes.NewReader(quickstartBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	select {
	case <-oracle.started:
	case <-time.After(5 * time.Second):
		t.Fatal("oracle never started solving")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client request should fail after cancellation")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.met.canceled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancelled request")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.met.reduces.Value() != 0 {
		t.Errorf("cancelled request counted as a successful reduce")
	}
}

func TestHealthzAndStatz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// One miss then one hit, visible in /statz.
	body := quickstartBody(t)
	for i := 0; i < 2; i++ {
		var out map[string]any
		postInstance(t, ts.URL+"/v1/reduce?k=3", body, &out)
	}
	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats statzResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Reduces != 2 || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 || stats.Cache.Entries != 1 {
		t.Errorf("statz = %+v, want 2 reduces, 1 hit, 1 miss, 1 entry", stats)
	}
	if stats.MaxInflight != 2 || stats.MaxWorkers != 2 {
		t.Errorf("statz limits = %+v", stats)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/reduce")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/reduce status %d, want 405", resp.StatusCode)
	}
}

// TestREADMECurlBodyStaysExecutable pins the contract the CI smoke job
// and the README curl example rely on: the checked-in request body parses
// as a hypergraph and strings.Contains-level schema markers hold.
func TestREADMECurlBodyStaysExecutable(t *testing.T) {
	body := quickstartBody(t)
	if !strings.Contains(string(body), `"type":"hypergraph"`) {
		t.Error("testdata/quickstart.json lost its type marker")
	}
	h, err := graphio.ReadHypergraph(bytes.NewReader(body), graphio.FormatAuto)
	if err != nil {
		t.Fatalf("quickstart body no longer parses: %v", err)
	}
	if h.N() == 0 || h.M() == 0 {
		t.Error("quickstart body degenerate")
	}
}

// TestBodyTooLargeReturns413 pins the over-limit status distinction.
func TestBodyTooLargeReturns413(t *testing.T) {
	_, ts := newTestServerConfig(t, config{maxWorkers: 1, maxInflight: 1, maxBodyBytes: 64, seed: 1})
	big := bytes.Repeat([]byte{'a'}, 256)
	var got map[string]any
	resp := postInstance(t, ts.URL+"/v1/reduce", big, &got)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%v)", resp.StatusCode, got)
	}
}

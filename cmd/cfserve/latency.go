package main

// latency.go tracks per-endpoint response latency with lock-free
// histograms, surfaced through /statz. Buckets are powers of two over
// microseconds (bucket i holds samples in [2^(i-1), 2^i) µs), which
// covers sub-millisecond cache hits through multi-minute solves in 64
// fixed counters per track; the quantiles /statz reports are therefore
// upper bucket bounds, good to a factor of two, which is plenty for
// spotting a p99 collapse. Tracks: reduce and maxis (successful
// synchronous solves), jobs_submit (accepted submissions), and
// cache_hit / cache_miss (the same solve samples split by instance-cache
// disposition, so cold-parse cost stays visible next to hot-path cost).

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const latencyBuckets = 64

// latencyHist is a fixed log2 histogram over microseconds.
type latencyHist struct {
	count   atomic.Uint64
	sumUS   atomic.Uint64
	maxUS   atomic.Uint64
	buckets [latencyBuckets]atomic.Uint64
}

// observe records one latency sample.
func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
	h.buckets[bits.Len64(us)].Add(1)
}

// latencySnapshot is the JSON rendering of one histogram.
type latencySnapshot struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// snapshot renders the histogram. Concurrent observes can tear between
// count and buckets; quantiles use the bucket total so the snapshot is
// always internally consistent.
func (h *latencyHist) snapshot() latencySnapshot {
	var counts [latencyBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := latencySnapshot{
		Count: h.count.Load(),
		MaxMS: float64(h.maxUS.Load()) / 1000,
	}
	if total == 0 {
		return s
	}
	s.MeanMS = float64(h.sumUS.Load()) / float64(total) / 1000
	quantile := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(total))) // nearest rank
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				// Upper bound of bucket i: 2^i - 1 µs (bucket 0 is the
				// zero-microsecond samples).
				if i == 0 {
					return 0
				}
				return float64(uint64(1)<<i-1) / 1000
			}
		}
		return s.MaxMS
	}
	s.P50MS = quantile(0.50)
	s.P95MS = quantile(0.95)
	s.P99MS = quantile(0.99)
	return s
}

// latencyTracks is the server's set of histograms.
type latencyTracks struct {
	reduce     latencyHist
	maxis      latencyHist
	jobsSubmit latencyHist
	cacheHit   latencyHist
	cacheMiss  latencyHist
}

// observeSolve records a successful synchronous solve into its endpoint
// track and the matching cache-disposition track.
func (l *latencyTracks) observeSolve(endpoint *latencyHist, d time.Duration, cacheHit bool) {
	endpoint.observe(d)
	if cacheHit {
		l.cacheHit.observe(d)
	} else {
		l.cacheMiss.observe(d)
	}
}

// snapshot renders every track keyed for the /statz document.
func (l *latencyTracks) snapshot() map[string]latencySnapshot {
	return map[string]latencySnapshot{
		"reduce":      l.reduce.snapshot(),
		"maxis":       l.maxis.snapshot(),
		"jobs_submit": l.jobsSubmit.snapshot(),
		"cache_hit":   l.cacheHit.snapshot(),
		"cache_miss":  l.cacheMiss.snapshot(),
	}
}

// Command pscgen emits graph and hypergraph instances in any
// internal/graphio format, for reproducible experiment pipelines feeding
// cfreduce or cfserve.
//
// Usage:
//
//	pscgen -kind hypergraph -gen planted -n 60 -m 24 -k 3 > instance.hg
//	pscgen -kind graph -gen gnp -n 100 -p 0.1 -seed 9 > graph.g
//	pscgen -kind graph -gen grid -n 4 -m 5 -format dimacs -out grid.col
//	pscgen -kind hypergraph -format json | curl -fsS -X POST --data-binary @- localhost:8355/v1/reduce
//
// -format selects edgelist (the default), dimacs (graphs only) or json;
// -out writes to a file, deriving the format from its extension when
// -format is not given.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pscgen:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		kind    = flag.String("kind", "hypergraph", "graph | hypergraph")
		gen     = flag.String("gen", "planted", "graph: gnp|grid|cycle|tree; hypergraph: planted|uniform|interval|star")
		n       = flag.Int("n", 60, "vertices (grid: rows)")
		m       = flag.Int("m", 24, "hyperedges (grid: cols)")
		k       = flag.Int("k", 3, "planted palette size")
		sizeLo  = flag.Int("size-lo", 3, "minimum edge size")
		sizeHi  = flag.Int("size-hi", 5, "maximum edge size")
		p       = flag.Float64("p", 0.1, "G(n,p) edge probability")
		seed    = flag.Int64("seed", 1, "random seed (the default shared by cfreduce and psctab)")
		formatF = flag.String("format", "", "output format: edgelist | dimacs | json (empty = from -out extension, else edgelist)")
		outFile = flag.String("out", "", "write to this file instead of stdout")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	format, err := graphio.ParseFormat(*formatF)
	if err != nil {
		return err
	}
	if format == graphio.FormatAuto && *outFile != "" {
		format = graphio.FormatFromPath(*outFile)
	}
	if format == graphio.FormatAuto {
		format = graphio.FormatEdgeList
	}
	var w io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	switch *kind {
	case "graph":
		g, err := makeGraph(*gen, *n, *m, *p, rng)
		if err != nil {
			return err
		}
		return graphio.WriteGraph(w, g, format)
	case "hypergraph":
		h, err := makeHypergraph(*gen, *n, *m, *k, *sizeLo, *sizeHi, rng)
		if err != nil {
			return err
		}
		return graphio.WriteHypergraph(w, h, format)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func makeGraph(gen string, n, m int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	switch gen {
	case "gnp":
		return graph.GnP(n, p, rng), nil
	case "grid":
		return graph.Grid(n, m), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph generator %q", gen)
	}
}

func makeHypergraph(gen string, n, m, k, sizeLo, sizeHi int, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	switch gen {
	case "planted":
		h, _, err := hypergraph.PlantedCF(n, m, k, sizeLo, sizeHi, rng)
		return h, err
	case "uniform":
		return hypergraph.Uniform(n, m, sizeLo, rng)
	case "interval":
		return hypergraph.Interval(n, m, 2, sizeHi, rng)
	case "star":
		return hypergraph.Star(n, m, sizeLo, rng)
	default:
		return nil, fmt.Errorf("unknown hypergraph generator %q", gen)
	}
}

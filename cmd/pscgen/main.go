// Command pscgen emits graph and hypergraph instances in the text format
// that cfreduce consumes, for reproducible experiment pipelines.
//
// Usage:
//
//	pscgen -kind hypergraph -gen planted -n 60 -m 24 -k 3 > instance.hg
//	pscgen -kind graph -gen gnp -n 100 -p 0.1 -seed 9 > graph.g
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pslocal/internal/encode"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pscgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind   = flag.String("kind", "hypergraph", "graph | hypergraph")
		gen    = flag.String("gen", "planted", "graph: gnp|grid|cycle|tree; hypergraph: planted|uniform|interval|star")
		n      = flag.Int("n", 60, "vertices (grid: rows)")
		m      = flag.Int("m", 24, "hyperedges (grid: cols)")
		k      = flag.Int("k", 3, "planted palette size")
		sizeLo = flag.Int("size-lo", 3, "minimum edge size")
		sizeHi = flag.Int("size-hi", 5, "maximum edge size")
		p      = flag.Float64("p", 0.1, "G(n,p) edge probability")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "graph":
		g, err := makeGraph(*gen, *n, *m, *p, rng)
		if err != nil {
			return err
		}
		return encode.WriteGraph(os.Stdout, g)
	case "hypergraph":
		h, err := makeHypergraph(*gen, *n, *m, *k, *sizeLo, *sizeHi, rng)
		if err != nil {
			return err
		}
		return encode.WriteHypergraph(os.Stdout, h)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func makeGraph(gen string, n, m int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	switch gen {
	case "gnp":
		return graph.GnP(n, p, rng), nil
	case "grid":
		return graph.Grid(n, m), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph generator %q", gen)
	}
}

func makeHypergraph(gen string, n, m, k, sizeLo, sizeHi int, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	switch gen {
	case "planted":
		h, _, err := hypergraph.PlantedCF(n, m, k, sizeLo, sizeHi, rng)
		return h, err
	case "uniform":
		return hypergraph.Uniform(n, m, sizeLo, rng)
	case "interval":
		return hypergraph.Interval(n, m, 2, sizeHi, rng)
	case "star":
		return hypergraph.Star(n, m, sizeLo, rng)
	default:
		return nil, fmt.Errorf("unknown hypergraph generator %q", gen)
	}
}

package main

import (
	"math/rand"
	"testing"
)

func TestMakeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		gen  string
		n, m int
		want int // expected node count
	}{
		{"gnp", 20, 0, 20},
		{"grid", 3, 4, 12},
		{"cycle", 9, 0, 9},
		{"tree", 15, 0, 15},
	}
	for _, tt := range tests {
		g, err := makeGraph(tt.gen, tt.n, tt.m, 0.2, rng)
		if err != nil {
			t.Fatalf("%s: %v", tt.gen, err)
		}
		if g.N() != tt.want {
			t.Errorf("%s: N = %d, want %d", tt.gen, g.N(), tt.want)
		}
	}
	if _, err := makeGraph("nope", 5, 5, 0.1, rng); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestMakeHypergraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, gen := range []string{"planted", "uniform", "interval", "star"} {
		h, err := makeHypergraph(gen, 30, 8, 3, 3, 5, rng)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if h.M() != 8 {
			t.Errorf("%s: M = %d, want 8", gen, h.M())
		}
	}
	if _, err := makeHypergraph("nope", 10, 5, 2, 2, 3, rng); err == nil {
		t.Error("unknown generator accepted")
	}
}

// Command cfbatch runs the Theorem 1.1 reduction over every instance in
// a directory through the asynchronous job subsystem: it enqueues each
// matching file as a job on an in-process pslocal.JobManager, waits with
// a live progress line per job, and exits non-zero if any job failed —
// the batch-sweep workload (locally-optimal structure families, instance
// grids) as a one-command pipeline.
//
// Usage examples:
//
//	cfbatch -dir instances
//	cfbatch -dir instances -glob '*.json' -workers 4 -priority high
//	cfbatch -dir instances -out results -k 3 -oracle portfolio:greedy-mindeg,clique-removal
//	cfbatch -dir instances -deadline 30s -retries 2 -timeout 10m
//
// Instances may mix every graphio format (the parser sniffs each body);
// a file that does not parse as a hypergraph fails its own job without
// stopping the batch. With -out, each completed job persists its result
// as a graphio reduction-result document named by the job's content
// hash — the same store layout cfserve's -jobs-dir uses, so a later
// cfbatch or cfserve over the same directory recovers the finished work
// and dedupes resubmissions instead of re-solving.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"pslocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cfbatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir      = flag.String("dir", "", "instance directory to sweep (required)")
		glob     = flag.String("glob", "*", "file name filter inside -dir")
		outDir   = flag.String("out", "", "persistent job store directory (default: in-memory only)")
		workers  = flag.Int("workers", 0, "job worker pool width (0 = GOMAXPROCS)")
		priority = flag.String("priority", "normal", "queue lane: low | normal | high")
		k        = flag.Int("k", 3, "palette size per phase")
		oracle   = flag.String("oracle", "", "registry oracle name, incl. portfolio:<a>,<b>,... (empty = implicit first-fit)")
		seed     = flag.Int64("seed", 1, "random seed for randomized oracles")
		deadline = flag.Duration("deadline", 0, "per-job run deadline (0 = unbounded)")
		retries  = flag.Int("retries", 0, "transient-failure retry budget per job")
		timeout  = flag.Duration("timeout", 0, "overall batch timeout (0 = unbounded)")
	)
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("missing -dir (the instance directory to sweep)")
	}
	prio, err := pslocal.ParseJobPriority(*priority)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := batchConfig{
		dir:      *dir,
		glob:     *glob,
		outDir:   *outDir,
		workers:  *workers,
		priority: prio,
		params:   pslocal.JobParams{K: *k, Oracle: *oracle, Seed: *seed},
		deadline: *deadline,
		retries:  *retries,
	}
	return runBatch(ctx, cfg, os.Stdout)
}

// batchConfig carries the resolved flags.
type batchConfig struct {
	dir      string
	glob     string
	outDir   string
	workers  int
	priority pslocal.JobPriority
	params   pslocal.JobParams
	deadline time.Duration
	retries  int
}

// collectFiles lists the regular files under dir matching glob, sorted
// for a deterministic submission order.
func collectFiles(dir, glob string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		return nil, fmt.Errorf("bad -glob pattern %q: %w", glob, err)
	}
	var files []string
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil || !st.Mode().IsRegular() {
			continue
		}
		files = append(files, p)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no instance files match %s", filepath.Join(dir, glob))
	}
	return files, nil
}

// submitted pairs a job id with the file it came from.
type submitted struct {
	id, file string
	deduped  bool
}

// runBatch is the testable core: enqueue every matching file, wait for
// each in submission order with a progress line, print the counter
// summary, and fail if any job failed.
func runBatch(ctx context.Context, cfg batchConfig, w io.Writer) error {
	files, err := collectFiles(cfg.dir, cfg.glob)
	if err != nil {
		return err
	}
	jm, err := pslocal.NewJobManager(pslocal.JobConfig{
		Dir:     cfg.outDir,
		Workers: cfg.workers,
		// The queue must hold the whole sweep: every file is enqueued
		// before the first Await.
		QueueCap: len(files),
	})
	if err != nil {
		return err
	}
	defer jm.Close()

	subs := make([]submitted, 0, len(files))
	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		info, accepted, err := jm.Submit(pslocal.JobRequest{
			Body:       body,
			Params:     cfg.params,
			Priority:   cfg.priority,
			Deadline:   cfg.deadline,
			MaxRetries: cfg.retries,
			Label:      filepath.Base(file),
		})
		if err != nil {
			return fmt.Errorf("enqueueing %s: %w", file, err)
		}
		subs = append(subs, submitted{id: info.ID, file: file, deduped: !accepted})
	}
	fmt.Fprintf(w, "enqueued %d jobs from %s (glob %s, priority %s, workers per pool: %d)\n",
		len(subs), cfg.dir, cfg.glob, cfg.priority, jm.Stats().Workers)

	// The summary counts THIS batch's outcomes from the awaited
	// snapshots — a dedupe onto a previous run's stored job is still a
	// "done" for this sweep; the manager's Stats only count terminal
	// transitions made by this process.
	outcomes := map[pslocal.JobState]int{}
	for i, sub := range subs {
		final, err := jm.Await(ctx, sub.id)
		if err != nil {
			return fmt.Errorf("waiting for %s: %w", sub.file, err)
		}
		outcomes[final.State]++
		note := ""
		if sub.deduped {
			note = " (deduped)"
		}
		switch final.State {
		case pslocal.JobDone:
			fmt.Fprintf(w, "[%d/%d] done    %s colors=%d phases=%d wait=%.1fms run=%.1fms%s\n",
				i+1, len(subs), filepath.Base(sub.file),
				final.TotalColors, final.PhaseCount, final.WaitMS(), final.RunMS(), note)
		default:
			fmt.Fprintf(w, "[%d/%d] %-7s %s: %s%s\n",
				i+1, len(subs), final.State, filepath.Base(sub.file), final.Error, note)
		}
	}

	st := jm.Stats()
	failures := outcomes[pslocal.JobFailed] + outcomes[pslocal.JobCancelled]
	fmt.Fprintf(w, "batch: %d done, %d failed, %d cancelled, %d retries, %d deduped; wait %.1fms, run %.1fms\n",
		outcomes[pslocal.JobDone], outcomes[pslocal.JobFailed], outcomes[pslocal.JobCancelled],
		st.Retries, st.Deduped, st.WaitSumMS, st.RunSumMS)
	if cfg.outDir != "" {
		fmt.Fprintf(w, "results: %s\n", cfg.outDir)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d jobs failed", failures, len(subs))
	}
	return nil
}

package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pslocal"
)

// writeInstances populates dir with a small mixed-format sweep: two
// edge-list hypergraphs and one JSON hypergraph.
func writeInstances(t *testing.T, dir string) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var files []string
	for i, name := range []string{"a.hg", "b.hg"} {
		h, _, err := pslocal.PlantedCF(20+2*i, 8, 2, 2, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		var hbuf bytes.Buffer
		if err := pslocal.WriteHypergraph(&hbuf, h, pslocal.FormatEdgeList); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, hbuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	jsonPath := filepath.Join(dir, "c.json")
	if err := os.WriteFile(jsonPath, []byte(`{"type":"hypergraph","n":6,"edges":[[0,1,2],[3,4,5]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	return append(files, jsonPath)
}

func TestCollectFiles(t *testing.T) {
	dir := t.TempDir()
	writeInstances(t, dir)
	if err := os.Mkdir(filepath.Join(dir, "sub.hg"), 0o755); err != nil { // directories are skipped
		t.Fatal(err)
	}
	all, err := collectFiles(dir, "*")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("collected %d files, want 3: %v", len(all), all)
	}
	hgOnly, err := collectFiles(dir, "*.hg")
	if err != nil {
		t.Fatal(err)
	}
	if len(hgOnly) != 2 {
		t.Fatalf("glob *.hg matched %d, want 2", len(hgOnly))
	}
	if _, err := collectFiles(dir, "*.col"); err == nil {
		t.Error("empty match reported no error")
	}
}

// TestRunBatchMixedFormats drives the full pipeline over a mixed-format
// directory with a persistent store: every job completes, the results
// land in -out as readable result documents, and the summary counts
// match.
func TestRunBatchMixedFormats(t *testing.T) {
	dir := t.TempDir()
	out := t.TempDir()
	writeInstances(t, dir)
	var buf bytes.Buffer
	cfg := batchConfig{
		dir: dir, glob: "*", outDir: out, workers: 2,
		priority: pslocal.JobPriorityHigh,
		params:   pslocal.JobParams{K: 2, Oracle: "greedy-mindeg", Seed: 1},
	}
	if err := runBatch(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("runBatch: %v\n%s", err, buf.String())
	}
	outText := buf.String()
	if !strings.Contains(outText, "enqueued 3 jobs") ||
		!strings.Contains(outText, "3 done, 0 failed") {
		t.Errorf("summary missing from output:\n%s", outText)
	}
	entries, err := filepath.Glob(filepath.Join(out, "*.result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("store holds %d result docs, want 3", len(entries))
	}
	for _, path := range entries {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pslocal.ReadResult(f)
		f.Close()
		if err != nil {
			t.Errorf("%s does not parse as a result document: %v", filepath.Base(path), err)
		} else if res.TotalColors == 0 {
			t.Errorf("%s degenerate: %+v", filepath.Base(path), res)
		}
	}

	// A second run over the same store dedupes onto the persisted jobs
	// instead of re-solving.
	buf.Reset()
	if err := runBatch(context.Background(), cfg, &buf); err != nil {
		t.Fatalf("second runBatch: %v\n%s", err, buf.String())
	}
	// The summary counts this batch's outcomes, so a fully-deduped rerun
	// still reports its jobs as done.
	if !strings.Contains(buf.String(), "3 done, 0 failed") || !strings.Contains(buf.String(), "3 deduped") {
		t.Errorf("second run summary wrong:\n%s", buf.String())
	}
}

// TestRunBatchReportsFailures keeps the batch going past a bad instance
// and exits non-zero.
func TestRunBatchReportsFailures(t *testing.T) {
	dir := t.TempDir()
	writeInstances(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "broken.hg"), []byte("hypergraph 2 nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := batchConfig{dir: dir, glob: "*", workers: 2,
		priority: pslocal.JobPriorityNormal, params: pslocal.JobParams{K: 2}}
	err := runBatch(context.Background(), cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "1 of 4 jobs failed") {
		t.Fatalf("error = %v, want the failure tally\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "failed") || !strings.Contains(buf.String(), "broken.hg") {
		t.Errorf("per-job failure line missing:\n%s", buf.String())
	}
}

// TestRunBatchHonoursContext aborts a sweep through its context.
func TestRunBatchHonoursContext(t *testing.T) {
	dir := t.TempDir()
	writeInstances(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	cfg := batchConfig{dir: dir, glob: "*", workers: 1, priority: pslocal.JobPriorityNormal,
		params: pslocal.JobParams{K: 2}}
	if err := runBatch(ctx, cfg, &buf); err == nil {
		t.Error("cancelled batch reported success")
	}
}

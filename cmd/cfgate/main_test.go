package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestResolveBackends(t *testing.T) {
	file := filepath.Join(t.TempDir(), "backends.txt")
	if err := os.WriteFile(file, []byte("# fleet\nhttp://c:1\n\n  http://d:2  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := resolveBackends(" http://a:1 ,, http://b:2", file)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:1", "http://d:2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resolveBackends = %v, want %v", got, want)
	}

	if _, err := resolveBackends("", ""); err == nil {
		t.Error("empty backend set must fail")
	}
	if _, err := resolveBackends("", filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing -backends-file must fail")
	}
}

// Command cfgate is the cluster gateway: it fronts a set of cfserve
// backends and routes /v1/reduce, /v1/maxis and /v1/jobs traffic by
// cache affinity — the routing key is the solver's instance cache key
// (the sha256 content hash of kind, format and body), computed once
// here and forwarded in X-Pslocal-Instance-Key so backends skip
// re-hashing. Repeated submissions of the same instance land on the
// same backend and hit its parsed-instance cache.
//
// Endpoints mirror cfserve's API one for one; responses carry the
// serving backend in X-Pslocal-Backend. The gateway adds:
//
//	GET /healthz   gateway liveness
//	GET /readyz    ready when at least one backend is admitted
//	GET /statz     routing policy, per-backend health/in-flight/proxied
//	GET /metrics   Prometheus exposition: request/reroute/failure counters,
//	               per-backend proxy latency, retries, health and ejections
//
// Every request carries an X-Pslocal-Request-Id — the client's when
// valid, minted here otherwise — forwarded on every proxy attempt and
// echoed on the response; proxied requests at or above -slow-ms log a
// structured warning.
//
// Backends are probed on -probe-interval at -probe-path (cfserve's
// /readyz, which a draining node answers 503): -fail-after consecutive
// failures eject a backend, ejected backends re-probe under exponential
// backoff, and transport errors observed while proxying eject passively
// between probes. Failed idempotent requests retry against the next
// ring candidates (-retries), so draining or killing one node mid-burst
// costs clients nothing.
//
// Quick start (three nodes sharing a job store, one gateway):
//
//	cfserve -addr :8361 -jobs-dir /tmp/cfjobs &
//	cfserve -addr :8362 -jobs-dir /tmp/cfjobs &
//	cfserve -addr :8363 -jobs-dir /tmp/cfjobs &
//	cfgate -addr :8360 -backends http://localhost:8361,http://localhost:8362,http://localhost:8363 &
//	curl -fsS -X POST --data-binary @cmd/cfserve/testdata/quickstart.json \
//	  'http://localhost:8360/v1/reduce?k=3&oracle=greedy-mindeg'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pslocal/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cfgate:", err)
		os.Exit(1)
	}
}

// resolveBackends merges the -backends list with the -backends-file
// contents (one URL per line, '#' comments and blank lines skipped).
func resolveBackends(csv, file string) ([]string, error) {
	var backends []string
	for _, b := range strings.Split(csv, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("reading -backends-file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			backends = append(backends, line)
		}
	}
	if len(backends) == 0 {
		return nil, errors.New("no backends: set -backends and/or -backends-file")
	}
	return backends, nil
}

func run() error {
	var (
		addr          = flag.String("addr", ":8360", "listen address")
		backendsCSV   = flag.String("backends", "", "comma-separated cfserve base URLs (http://host:port)")
		backendsFile  = flag.String("backends-file", "", "file with one backend URL per line (# comments); merged with -backends")
		policy        = flag.String("policy", "affinity", "routing policy: affinity|round-robin|least-loaded")
		retries       = flag.Int("retries", 2, "extra backends a failed idempotent request tries")
		replicas      = flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = default)")
		maxBodyMB     = flag.Int64("max-body-mb", 64, "request body cap in MiB")
		inflight      = flag.Int("backend-inflight", 0, "per-backend in-flight cap before affinity spills (0 = never spill)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "backend health probe interval")
		probeTimeout  = flag.Duration("probe-timeout", 0, "probe request timeout (0 = the interval)")
		probePath     = flag.String("probe-path", "/readyz", "probed backend endpoint")
		failAfter     = flag.Int("fail-after", 3, "consecutive probe/transport failures that eject a backend")
		slowMS        = flag.Int64("slow-ms", 1000,
			"log a structured warning for proxied requests at or above this many milliseconds (0 = disabled)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "cfgate")

	backends, err := resolveBackends(*backendsCSV, *backendsFile)
	if err != nil {
		return err
	}
	gw, err := cluster.New(cluster.Config{
		Backends:        backends,
		Policy:          cluster.Policy(*policy),
		Replicas:        *replicas,
		Retries:         *retries,
		MaxBodyBytes:    *maxBodyMB << 20,
		BackendInflight: *inflight,
		Probe: cluster.ProbeConfig{
			Interval:  *probeInterval,
			Timeout:   *probeTimeout,
			FailAfter: *failAfter,
			Path:      *probePath,
		},
		Logger:        logger,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go gw.Run(ctx)

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           gw,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", *addr,
			"policy", *policy,
			"backends", strings.Join(backends, " "))
		errc <- httpServer.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		logger.Info("shutting down on signal", "signal", sig.String())
		sctx, scancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer scancel()
		if err := httpServer.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

package main

// main_test.go drives run() end to end against a stub cfserve: a
// recorded burst, byte-identical summaries across two replays of the
// trace (the acceptance criterion for `cfload -replay`), the custom
// -mix path, and the failure modes (down server, malformed trace).

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pslocal/internal/loadgen"
)

func stubServer(t *testing.T) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	seen := map[string]bool{}
	jobs := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		sum := sha256.Sum256(body)
		hexSum := hex.EncodeToString(sum[:])
		key := "sha256:" + hexSum[:16]
		mu.Lock()
		cache := "miss"
		if seen[key] {
			cache = "hit"
		}
		seen[key] = true
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/reduce":
			fmt.Fprintf(w, `{"instance":{"cache":%q,"key":%q},"verified":true,"result":{"total_colors":%d}}`,
				cache, key, int(sum[0])%5+1)
		case "/v1/maxis":
			fmt.Fprintf(w, `{"instance":{"cache":%q,"key":%q},"verified":true,"size":%d}`,
				cache, key, int(sum[1])%9+1)
		case "/v1/jobs":
			mu.Lock()
			jobs++
			mu.Unlock()
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"job":{"id":%q,"state":"queued"}}`, hexSum)
		case "/statz":
			mu.Lock()
			j := jobs
			mu.Unlock()
			fmt.Fprintf(w, `{"jobs":{"started":%d,"finished":%d,"wait_sum_ms":%d,"run_sum_ms":%d}}`,
				j, j, j*3, j*7)
		default:
			http.Error(w, `{"error":"no route"}`, http.StatusNotFound)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err = run(context.Background(), args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestRecordThenReplayByteIdentical(t *testing.T) {
	srv := stubServer(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "burst.trace")
	perf := filepath.Join(dir, "perf.json")

	out0, errText, err := runCLI(t,
		"-addr", srv.URL, "-requests", "80", "-rate", "4000", "-seed", "7",
		"-hit-ratio", "0.5", "-record", trace, "-perf-out", perf)
	if err != nil {
		t.Fatalf("record run: %v\nstderr:\n%s", err, errText)
	}
	var sum loadgen.Summary
	if err := json.Unmarshal([]byte(out0), &sum); err != nil {
		t.Fatalf("stdout is not a summary: %v\n%s", err, out0)
	}
	if sum.OK != 80 || sum.Requests != 80 {
		t.Fatalf("unexpected summary: %+v", sum)
	}
	if !strings.Contains(errText, "latency ms") || !strings.Contains(errText, "SLO attained") {
		t.Fatalf("human report missing from stderr:\n%s", errText)
	}

	var p loadgen.Perf
	data, err := os.ReadFile(perf)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("perf-out is not a perf report: %v", err)
	}
	if p.ThroughputRPS <= 0 || p.Latency.P99MS <= 0 || len(p.Classes) != 3 {
		t.Fatalf("perf report implausible: %+v", p)
	}
	if p.Jobs == nil || p.Jobs.Started == 0 {
		t.Fatalf("jobs split missing from perf report: %+v", p.Jobs)
	}

	// The acceptance criterion: replaying the trace twice produces
	// byte-identical summary JSON on stdout.
	out1, _, err := runCLI(t, "-addr", srv.URL, "-replay", trace, "-seed", "1")
	if err != nil {
		t.Fatalf("replay 1: %v", err)
	}
	out2, _, err := runCLI(t, "-addr", srv.URL, "-replay", trace, "-seed", "1")
	if err != nil {
		t.Fatalf("replay 2: %v", err)
	}
	if out1 != out2 {
		t.Fatalf("replay summaries differ:\n%s\n---\n%s", out1, out2)
	}
	var rsum loadgen.Summary
	if err := json.Unmarshal([]byte(out1), &rsum); err != nil {
		t.Fatal(err)
	}
	if rsum.TraceSHA256 != sum.TraceSHA256 {
		t.Fatal("replay ran a different schedule than it recorded")
	}
	if rsum.OutcomeSHA256 != sum.OutcomeSHA256 {
		t.Fatal("replay outcomes diverge from the recording")
	}
}

func TestCustomMix(t *testing.T) {
	srv := stubServer(t)
	dir := t.TempDir()
	mix := filepath.Join(dir, "mix.json")
	classes := []loadgen.Class{{
		Name: "only-maxis", Weight: 1, Endpoint: loadgen.EndpointMaxIS, Kind: loadgen.KindGraph,
		Gen: "cycle", N: 16, Formats: []string{"dimacs"},
		Params: loadgen.Params{Oracle: "greedy-mindeg"}, SLOMillis: 200,
	}}
	data, err := json.Marshal(classes)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mix, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "-addr", srv.URL, "-requests", "10", "-rate", "4000",
		"-hit-ratio", "0", "-mix", mix, "-no-statz")
	if err != nil {
		t.Fatalf("custom mix run: %v", err)
	}
	var sum loadgen.Summary
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.ByClass["only-maxis"] != 10 || sum.ByEndpoint["maxis"] != 10 {
		t.Fatalf("mix not honoured: %+v", sum)
	}
}

func TestServerUnreachableFails(t *testing.T) {
	_, _, err := runCLI(t, "-addr", "http://127.0.0.1:1", "-requests", "3",
		"-rate", "4000", "-timeout", "2s", "-no-statz")
	if err == nil {
		t.Fatal("run against a dead server reported success")
	}
}

func TestBadInputs(t *testing.T) {
	srv := stubServer(t)
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.trace")
	if err := os.WriteFile(garbage, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "-addr", srv.URL, "-replay", garbage); err == nil {
		t.Fatal("malformed trace accepted")
	}
	if _, _, err := runCLI(t, "-addr", srv.URL, "-replay", filepath.Join(dir, "missing.trace")); err == nil {
		t.Fatal("missing trace accepted")
	}
	if _, _, err := runCLI(t, "-addr", srv.URL, "-requests", "0"); err == nil {
		t.Fatal("zero-request spec accepted")
	}
	if _, _, err := runCLI(t, "-addr", srv.URL, "-arrival", "bursty"); err == nil {
		t.Fatal("unknown arrival distribution accepted")
	}
	if _, _, err := runCLI(t, "-addr", srv.URL, "stray-arg"); err == nil {
		t.Fatal("stray positional argument accepted")
	}
}

// Command cfload is an open-loop load generator and trace replayer for
// cfserve. It expands a seeded workload spec — arrival process
// (poisson/gamma/weibull), request rate, a mix of instance classes over
// /v1/reduce, /v1/maxis and /v1/jobs, and a target cache-hit ratio —
// into a deterministic request schedule, fires it at the server without
// waiting for completions (arrivals never depend on the server keeping
// up), and reports latency quantiles, throughput, per-class SLO
// attainment and the job queue-wait/run split.
//
// Every run can be recorded to a versioned JSONL trace (-record) that
// replays deterministically (-replay): the trace stores generator
// directives rather than bodies, so replays rebuild byte-identical
// requests and the deterministic outcome summary on stdout is
// byte-identical across replays of the same trace. Wall-clock numbers
// (latency, throughput, cache hits) go to the human report on stderr
// and, as JSON, to -perf-out for scripts/benchmerge ingestion.
//
// Examples:
//
//	cfload -addr http://localhost:8355 -requests 500 -rate 200 -seed 7 \
//	    -record burst.trace -perf-out perf.json > summary.json
//	cfload -replay burst.trace -seed 1 > summary2.json   # byte-identical summaries
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pslocal/internal/loadgen"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cfload:", err)
		os.Exit(1)
	}
}

// defaultMix is the built-in three-class workload: small reductions,
// mid-size independent-set calls, and async job submissions, across all
// wire formats.
func defaultMix() []loadgen.Class {
	return []loadgen.Class{
		{Name: "reduce-small", Weight: 3, Endpoint: loadgen.EndpointReduce, Kind: loadgen.KindHypergraph,
			Gen: "planted", N: 60, M: 24, K: 3, SizeLo: 3, SizeHi: 6,
			Formats: []string{"edgelist", "json"},
			Params:  loadgen.Params{K: 3, Oracle: "greedy-mindeg", Seed: 1}, SLOMillis: 500},
		{Name: "maxis-gnp", Weight: 2, Endpoint: loadgen.EndpointMaxIS, Kind: loadgen.KindGraph,
			Gen: "gnp", N: 80, P: 0.08,
			Formats: []string{"edgelist", "dimacs", "json"},
			Params:  loadgen.Params{Oracle: "greedy-mindeg", Seed: 1}, SLOMillis: 500},
		{Name: "jobs-planted", Weight: 1, Endpoint: loadgen.EndpointJobs, Kind: loadgen.KindHypergraph,
			Gen: "planted", N: 60, M: 24, K: 3, SizeLo: 3, SizeHi: 6,
			Formats: []string{"json"},
			Params:  loadgen.Params{K: 3, Priority: "high"}, SLOMillis: 250},
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cfload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8355", "cfserve base URL")
		requests = fs.Int("requests", 200, "number of requests to generate")
		rate     = fs.Float64("rate", 100, "mean arrival rate in requests/second")
		arrival  = fs.String("arrival", "poisson", "inter-arrival distribution: poisson, gamma, weibull")
		shape    = fs.Float64("shape", 1, "shape parameter for gamma/weibull arrivals")
		hitRatio = fs.Float64("hit-ratio", 0.5, "target instance-reuse ratio in [0,1) steering server cache hits")
		mixPath  = fs.String("mix", "", "JSON file with the class mix ([]Class); empty = built-in three-class mix")
		seed     = fs.Int64("seed", 1, "workload seed (schedule, instances, reuse draws)")
		record   = fs.String("record", "", "write the executed trace to this JSONL file")
		replay   = fs.String("replay", "", "replay a recorded trace instead of generating one")
		speed    = fs.Float64("speed", 0, "schedule pacing: 1 = real-time arrival offsets, 2 = 2x fast, 0 = no pacing")
		perfOut  = fs.String("perf-out", "", "write the wall-clock perf report (JSON) to this file")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		inflight = fs.Int("max-inflight", 0, "client-side in-flight request cap (0 = 512)")
		label    = fs.String("label", "cfload", "label attached to job submissions")
		noStatz  = fs.Bool("no-statz", false, "skip the /statz probes that derive the job wait/run split")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var trace *loadgen.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		trace, err = loadgen.ReadTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("replay %s: %w", *replay, err)
		}
		fmt.Fprintf(stderr, "cfload: replaying %s: %d requests, seed %d\n", *replay, len(trace.Records), trace.Seed)
	} else {
		classes := defaultMix()
		if *mixPath != "" {
			data, err := os.ReadFile(*mixPath)
			if err != nil {
				return err
			}
			classes = nil
			if err := json.Unmarshal(data, &classes); err != nil {
				return fmt.Errorf("mix %s: %w", *mixPath, err)
			}
		}
		spec := loadgen.Spec{
			Seed:     *seed,
			Requests: *requests,
			Rate:     *rate,
			Arrival:  *arrival,
			Shape:    *shape,
			HitRatio: *hitRatio,
			Classes:  classes,
		}
		var err error
		trace, err = loadgen.Plan(spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "cfload: planned %d requests at %.0f/s (%s arrivals, hit-ratio %.2f, seed %d)\n",
			len(trace.Records), *rate, *arrival, *hitRatio, *seed)
	}

	client := &loadgen.Client{
		BaseURL:     *addr,
		HTTP:        loadgen.DefaultHTTPClient(*timeout),
		Speed:       *speed,
		MaxInflight: *inflight,
		Label:       *label,
		ProbeStatz:  !*noStatz,
	}
	rep, err := client.Run(ctx, trace)
	if err != nil {
		return err
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		werr := loadgen.WriteTrace(f, trace)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("record %s: %w", *record, werr)
		}
		fmt.Fprintf(stderr, "cfload: trace written to %s\n", *record)
	}
	if *perfOut != "" {
		data, err := json.MarshalIndent(rep.Perf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*perfOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	printHuman(stderr, rep)

	// stdout carries exactly the deterministic summary, so
	// `cfload -replay t > summary.json` is byte-stable across runs.
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep.Summary); err != nil {
		return err
	}

	if rep.Summary.OK == 0 {
		return errors.New("no request succeeded — is the server reachable?")
	}
	return nil
}

// printHuman renders the wall-clock report for terminals.
func printHuman(w io.Writer, rep *loadgen.Report) {
	p := rep.Perf
	fmt.Fprintf(w, "cfload: %d requests in %.2fs (%.1f req/s), %d errors\n",
		p.Requests, p.DurationS, p.ThroughputRPS, p.Errors)
	fmt.Fprintf(w, "cfload: latency ms p50=%.2f p95=%.2f p99=%.2f max=%.2f mean=%.2f\n",
		p.Latency.P50MS, p.Latency.P95MS, p.Latency.P99MS, p.Latency.MaxMS, p.Latency.MeanMS)
	fmt.Fprintf(w, "cfload: cache hits=%d misses=%d\n", p.CacheHits, p.CacheMisses)
	if p.SLO.Eligible > 0 {
		fmt.Fprintf(w, "cfload: SLO attained %d/%d (%.1f%%)\n",
			p.SLO.Attained, p.SLO.Eligible, 100*p.SLO.Ratio)
	}
	for _, c := range p.Classes {
		fmt.Fprintf(w, "cfload:   class %-14s %4d req  ok=%-4d p50=%.2fms p99=%.2fms slo=%.0fms attained=%.1f%%\n",
			c.Name, c.Requests, c.OK, c.Latency.P50MS, c.Latency.P99MS, c.SLOMillis, 100*c.SLORatio)
	}
	if p.Jobs != nil {
		fmt.Fprintf(w, "cfload: jobs started=%d finished=%d queue-wait mean=%.2fms run mean=%.2fms\n",
			p.Jobs.Started, p.Jobs.Finished, p.Jobs.WaitMeanMS, p.Jobs.RunMeanMS)
	}
}

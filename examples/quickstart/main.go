// Quickstart: generate a conflict-free-colourable hypergraph, run the
// paper's Theorem 1.1 reduction through Solvers configured with four
// different MaxIS strategies, and verify that every output is a
// conflict-free multicolouring.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"pslocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// A hypergraph with 60 vertices and 24 almost-uniform edges that is
	// guaranteed to admit a conflict-free 3-colouring (the planted one).
	h, planted, err := pslocal.PlantedCF(60, 24, 3, 3, 5, rng)
	if err != nil {
		return err
	}
	fmt.Printf("instance: %v (planted conflict-free 3-colouring exists: %v)\n",
		h, pslocal.IsConflictFree(h, planted))

	// A Solver is configured once and carries its strategy through every
	// call; WithOracle takes the same names the -oracle CLI flags and
	// cfserve query parameters accept, and WithPortfolio races several
	// registry oracles per phase on the worker pool.
	ctx := context.Background()
	configs := []struct {
		name   string
		solver *pslocal.Solver
	}{
		{"exact oracle (λ=1)", pslocal.NewSolver(pslocal.WithK(3), pslocal.WithOracle("exact"))},
		{"implicit first-fit", pslocal.NewSolver(pslocal.WithK(3))},
		{"min-degree greedy", pslocal.NewSolver(pslocal.WithK(3), pslocal.WithOracle("greedy-mindeg"))},
		{"oracle portfolio", pslocal.NewSolver(pslocal.WithK(3), pslocal.WithWorkers(0),
			pslocal.WithPortfolio("greedy-mindeg", "greedy-random", "clique-removal"))},
	}
	for _, cfg := range configs {
		res, err := cfg.solver.Solve(ctx, h)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		if err := pslocal.VerifyReduction(h, res); err != nil {
			return fmt.Errorf("%s failed verification: %w", cfg.name, err)
		}
		fmt.Printf("%-22s phases=%d  colours=%d  (paper bound ρ·k with λ=1: %d)\n",
			cfg.name, len(res.Phases), res.TotalColors, 3*pslocal.PhaseBound(1, h.M()))
	}
	fmt.Println("all reductions verified conflict-free ✓")
	return nil
}

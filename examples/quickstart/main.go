// Quickstart: generate a conflict-free-colourable hypergraph, run the
// paper's Theorem 1.1 reduction with three different MaxIS oracles, and
// verify that every output is a conflict-free multicolouring.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"pslocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// A hypergraph with 60 vertices and 24 almost-uniform edges that is
	// guaranteed to admit a conflict-free 3-colouring (the planted one).
	h, planted, err := pslocal.PlantedCF(60, 24, 3, 3, 5, rng)
	if err != nil {
		return err
	}
	fmt.Printf("instance: %v (planted conflict-free 3-colouring exists: %v)\n",
		h, pslocal.IsConflictFree(h, planted))

	// Named oracles come from the registry, the same names the -oracle
	// CLI flags and cfserve query parameters accept.
	greedy, err := pslocal.LookupOracle("greedy-mindeg", 7)
	if err != nil {
		return err
	}
	portfolio, err := pslocal.LookupOracle("portfolio:greedy-mindeg,greedy-random,clique-removal", 7)
	if err != nil {
		return err
	}
	configs := []struct {
		name string
		opts pslocal.ReduceOptions
	}{
		{"exact oracle (λ=1)", pslocal.ReduceOptions{K: 3, Mode: pslocal.ModeExactHinted}},
		{"implicit first-fit", pslocal.ReduceOptions{K: 3, Mode: pslocal.ModeImplicitFirstFit}},
		{"min-degree greedy", pslocal.ReduceOptions{K: 3, Mode: pslocal.ModeOracle, Oracle: greedy}},
		{"oracle portfolio", pslocal.ReduceOptions{K: 3, Mode: pslocal.ModeOracle, Oracle: portfolio,
			Engine: pslocal.ParallelEngine()}},
	}
	for _, cfg := range configs {
		res, err := pslocal.Reduce(h, cfg.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		if err := pslocal.VerifyReduction(h, res); err != nil {
			return fmt.Errorf("%s failed verification: %w", cfg.name, err)
		}
		fmt.Printf("%-22s phases=%d  colours=%d  (paper bound ρ·k with λ=1: %d)\n",
			cfg.name, len(res.Phases), res.TotalColors, 3*pslocal.PhaseBound(1, h.M()))
	}
	fmt.Println("all reductions verified conflict-free ✓")
	return nil
}

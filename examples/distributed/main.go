// Distributed reduction: the paper's remark that "G_k can be efficiently
// simulated in H in the LOCAL model" as a running pipeline. Each phase
// runs Luby's randomized MIS over the *implicit* conflict graph — every
// virtual node (e, v, c) hosted at vertex v, adjacency answered from H's
// incidence structure — and the harness accounts the LOCAL rounds the
// simulation costs.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"pslocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(21))
	h, _, err := pslocal.PlantedCF(25, 60, 3, 3, 5, rng)
	if err != nil {
		return err
	}
	fmt.Printf("instance: %v\n\n", h)

	res, err := pslocal.ReduceLocalRandomized(h, 3, 4)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-8s %-12s %-8s %-8s\n", "phase", "edges", "G_k triples", "|MIS|", "removed")
	for _, ph := range res.Phases {
		fmt.Printf("%-6d %-8d %-12d %-8d %-8d\n",
			ph.Phase, ph.EdgesBefore, ph.ConflictNodes, ph.ISSize, ph.HappyRemoved)
	}
	fmt.Printf("\nphases=%d  colours=%d  virtual G_k rounds=%d  simulated H rounds=%d\n",
		len(res.Phases), res.TotalColors, res.VirtualRounds, res.HostRounds)

	if err := pslocal.VerifyConflictFreeMulti(h, res.Multicoloring); err != nil {
		return err
	}
	fmt.Println("multicolouring verified conflict-free ✓")
	fmt.Println("\nnote: a LOCAL MIS of G_k guarantees progress (Lemma 2.1b) but is not a")
	fmt.Println("MaxIS approximation — exactly the gap the paper's completeness result is about.")
	return nil
}

// Phase decay: watches the Theorem 1.1 reduction shrink the residual edge
// set phase by phase and compares the measured trajectory with the paper's
// geometric envelope m·(1 − 1/λ)^i.
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"pslocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phasedecay:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(3))
	// A crowded instance (120 edges over only 15 vertices) keeps the
	// greedy oracle well below the optimum α = m, so the reduction needs
	// several phases and the geometric decay becomes visible. The planted
	// colouring guarantees α(G_k(H_i)) = |E_i| (Lemma 2.1a), making the
	// observed per-phase ratio a genuine λ.
	h, _, err := pslocal.PlantedCF(15, 120, 2, 4, 6, rng)
	if err != nil {
		return err
	}
	// The random-order greedy is the weakest interesting oracle: its
	// empirical λ drives multiple phases, which is what we want to see.
	sv := pslocal.NewSolver(
		pslocal.WithK(2),
		pslocal.WithOracle("greedy-random"),
		pslocal.WithSeed(9),
	)
	res, err := sv.Solve(context.Background(), h)
	if err != nil {
		return err
	}
	if err := pslocal.VerifyReduction(h, res); err != nil {
		return err
	}

	// Worst observed per-phase λ (genuine, since α(G_k(H_i)) = |E_i| on
	// planted instances by Lemma 2.1a).
	lambda := 1.0
	for _, ph := range res.Phases {
		if l := float64(ph.EdgesBefore) / float64(ph.ISSize); l > lambda {
			lambda = l
		}
	}
	fmt.Printf("m=%d  k=2  empirical λ=%.2f  paper phase bound ρ=λ·ln m+1=%d  actual phases=%d\n\n",
		h.M(), lambda, pslocal.PhaseBound(lambda, h.M()), len(res.Phases))
	fmt.Printf("%-6s %-8s %-8s %-10s %s\n", "phase", "|E_i|", "|I_i|", "envelope", "decay")
	for i, ph := range res.Phases {
		envelope := float64(h.M()) * math.Pow(1-1/lambda, float64(i))
		bar := strings.Repeat("#", ph.EdgesBefore*40/h.M())
		fmt.Printf("%-6d %-8d %-8d %-10.1f %s\n", ph.Phase, ph.EdgesBefore, ph.ISSize, envelope, bar)
	}
	fmt.Printf("\ntotal colours: %d = k(=2) × %d phases\n", res.TotalColors, len(res.Phases))
	return nil
}

// SLOCAL vs LOCAL maximal independent set — the Section 1 landscape of the
// paper: Luby's randomized MIS needs O(log n) LOCAL rounds, the greedy
// SLOCAL MIS needs locality 1, and the SLOCAL ball-carving algorithm
// (1+δ)-approximates the *maximum* independent set with locality O(log n).
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"pslocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slocalmis:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(5))
	n := 300
	g := pslocal.GnP(n, 4.0/float64(n), rng)
	fmt.Printf("graph: %v\n\n", g)

	// LOCAL model: Luby's randomized MIS.
	mis, lres, err := pslocal.LubyMIS(g, 1, pslocal.LocalOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("LOCAL  Luby MIS:          |MIS|=%-4d rounds=%-3d messages=%d\n",
		len(mis), lres.Rounds, lres.Messages)

	// SLOCAL model: greedy MIS with locality 1.
	smis, sres, err := pslocal.SLOCALGreedyMIS(g, pslocal.IdentityOrder(n))
	if err != nil {
		return err
	}
	fmt.Printf("SLOCAL greedy MIS:        |MIS|=%-4d locality=%d\n", len(smis), sres.Locality)

	// SLOCAL model: ball carving approximates MaxIS, not just MIS. The
	// carving runs behind the Solver handle, which budgets the per-ball
	// exact solves and admits a cancellation context.
	carve, err := pslocal.NewSolver(pslocal.WithCarving(1.0)).MaxIS(context.Background(), g)
	if err != nil {
		return err
	}
	fmt.Printf("SLOCAL ball carving (δ=1): |IS|=%-4d locality=%d (bound %d)\n",
		len(carve.Set), carve.Locality, carve.RadiusBound)

	for name, set := range map[string][]int32{"luby": mis, "greedy": smis, "carving": carve.Set} {
		if err := pslocal.VerifyIndependentSet(g, set); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	fmt.Println("\nall three outputs verified independent ✓")
	fmt.Println("note: ball carving guarantees |IS| >= α/(1+δ); MIS algorithms do not approximate α(G)")
	return nil
}

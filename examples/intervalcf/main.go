// Interval conflict-free colouring — the [DN18] scenario the paper adapted
// its technique from. Compares the direct dyadic O(log n)-colour algorithm
// against the paper's reduction pipeline on random interval hypergraphs.
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"

	"pslocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "intervalcf:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	fmt.Printf("%-6s %-6s %-14s %-10s %-18s\n", "n", "m", "dyadic colours", "log bound", "reduction colours")
	for _, n := range []int{32, 64, 128} {
		m := n / 2
		h, err := pslocal.IntervalHypergraph(n, m, 2, n/3+1, rng)
		if err != nil {
			return err
		}

		// Direct route: the dyadic colouring is conflict-free for every
		// interval hypergraph on the line.
		dyadic := pslocal.DyadicIntervalColoring(n)
		if !pslocal.IsConflictFree(h, dyadic) {
			return fmt.Errorf("n=%d: dyadic colouring unexpectedly not conflict-free", n)
		}

		// Paper route: iterated approximate MaxIS on conflict graphs,
		// through the Solver's scalable implicit-first-fit default.
		res, err := pslocal.NewSolver(pslocal.WithK(2)).Solve(context.Background(), h)
		if err != nil {
			return err
		}
		if err := pslocal.VerifyReduction(h, res); err != nil {
			return err
		}
		bound := int(math.Ceil(math.Log2(float64(n + 1))))
		fmt.Printf("%-6d %-6d %-14d %-10d %-18d\n",
			n, m, dyadic.MaxColor(), bound, res.TotalColors)
	}
	fmt.Println("both routes conflict-free on every instance ✓")
	return nil
}

module pslocal

go 1.24

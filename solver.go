package pslocal

// solver.go re-exports the context-first Solver API (internal/solver):
// one configurable entry point constructed once via functional options,
// owning the execution engine, the oracle selection, a bounded admission
// gate, and a content-hash-keyed cache of parsed instances. The flat
// functions of pslocal.go predate it and remain as thin deprecated
// wrappers.
//
//	sv := pslocal.NewSolver(pslocal.WithK(3), pslocal.WithWorkers(0),
//		pslocal.WithOracle("greedy-mindeg"), pslocal.WithCache(128))
//	res, err := sv.Solve(ctx, h)          // Theorem 1.1 reduction
//	is, err := sv.MaxIS(ctx, g)           // MaxIS through the same handle
//
// All Solver methods take a per-call context and cancel cooperatively;
// abandoned calls return ErrCancelled.

import (
	"context"
	"io"

	"pslocal/internal/hypergraph"
	"pslocal/internal/solver"
)

type (
	// Solver is the configurable entry point to the reduction pipeline:
	// construct with NewSolver, derive per-call variants with
	// [Solver.With], and solve with [Solver.Solve], [Solver.MaxIS],
	// [Solver.SolveBatch], [Solver.SolveReader] or [Solver.MaxISReader].
	// A Solver is safe for concurrent use.
	Solver = solver.Solver
	// SolverOption configures a Solver (see the With... constructors).
	SolverOption = solver.Option
	// ISResult is the outcome of Solver.MaxIS.
	ISResult = solver.ISResult
	// InstanceInfo describes a parsed instance and its cache disposition,
	// returned by Solver.SolveReader and Solver.MaxISReader.
	InstanceInfo = solver.Instance
	// SolverCacheStats snapshots the Solver's instance cache.
	SolverCacheStats = solver.CacheStats
)

// NewSolver constructs a Solver over the serial, implicit-first-fit,
// k=3 defaults.
func NewSolver(opts ...SolverOption) *Solver { return solver.New(opts...) }

// WithWorkers sets the worker-pool width shared by conflict-graph
// construction, portfolio racing and SolveBatch fan-out (the CLI
// -workers convention: 0 = GOMAXPROCS, 1 = serial).
func WithWorkers(n int) SolverOption { return solver.WithWorkers(n) }

// WithOracle selects the per-phase MaxIS strategy by name: "implicit",
// "exact", any registered oracle name, or "portfolio:<a>,<b>,...".
// Unknown names surface from Solve/MaxIS as ErrUnknownOracle.
func WithOracle(name string) SolverOption { return solver.WithOracle(name) }

// WithPortfolio selects a portfolio racing the named registry oracles
// per phase.
func WithPortfolio(members ...string) SolverOption { return solver.WithPortfolio(members...) }

// WithMode selects a built-in reduction mode explicitly; WithOracle wins
// when both are set.
func WithMode(m ReduceMode) SolverOption { return solver.WithMode(m) }

// WithK sets the per-phase palette size of Solve (default 3).
func WithK(k int) SolverOption { return solver.WithK(k) }

// WithSeed seeds randomized oracles (default 1).
func WithSeed(seed int64) SolverOption { return solver.WithSeed(seed) }

// WithMaxPhases bounds the reduction loop defensively; 0 keeps the
// default of 4·m + 16.
func WithMaxPhases(n int) SolverOption { return solver.WithMaxPhases(n) }

// WithCarving switches Solver.MaxIS onto the SLOCAL ball-carving
// (1+δ)-approximation; delta is the growth slack, 0 selecting 1.0.
func WithCarving(delta float64) SolverOption { return solver.WithCarving(delta) }

// WithCache bounds the Solver's parsed-instance LRU (keyed by content
// hash) to n entries; 0 disables caching. Construction-time only: derived
// solvers share the originating Solver's cache.
func WithCache(n int) SolverOption { return solver.WithCache(n) }

// WithMaxInflight bounds concurrently admitted solves; excess calls queue
// at the gate honouring their contexts (0 = unbounded, negative =
// GOMAXPROCS). Construction-time only, shared by derived solvers.
func WithMaxInflight(n int) SolverOption { return solver.WithMaxInflight(n) }

// Instance kinds of InstanceKey: the substrate a cache key was derived
// over (a key never hits across kinds).
const (
	KindHypergraph = solver.KindHypergraph
	KindGraph      = solver.KindGraph
)

// InstanceKey returns the Solver's instance cache key for a raw body:
// the hex sha256 content hash of kind (KindHypergraph or KindGraph),
// the canonical format directive and the body bytes. The cluster
// gateway computes it once per request to route by cache affinity and
// forwards it in HeaderInstanceKey; [Solver.SolveReaderKeyed] and
// [Solver.MaxISReaderKeyed] accept it to skip re-hashing.
func InstanceKey(kind, format string, body []byte) string {
	return solver.InstanceKey(kind, format, body)
}

// SolveHypergraphs is a convenience over [Solver.SolveBatch] for one-shot
// batch reductions on a throwaway Solver.
func SolveHypergraphs(ctx context.Context, hs []*Hypergraph, opts ...SolverOption) ([]*ReduceResult, error) {
	return NewSolver(opts...).SolveBatch(ctx, hs)
}

// SolveHypergraphReader is a convenience over [Solver.SolveReader] for
// one-shot file/stream reductions on a throwaway Solver.
func SolveHypergraphReader(ctx context.Context, r io.Reader, f GraphFormat, opts ...SolverOption) (*ReduceResult, error) {
	res, _, err := NewSolver(opts...).SolveReader(ctx, r, f)
	return res, err
}

// compile-time check that the facade aliases line up with the internal
// signatures the Solver methods use.
var _ func(context.Context, *hypergraph.Hypergraph) (*ReduceResult, error) = (*Solver)(nil).Solve
